// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the Section 5 applications behind the WindowEstimator
// interface: frequency moments (Cor 5.2), entropy (Cor 5.4), triangle
// counting (Cor 5.3), step-biased sampling. Estimators are built through
// the estimator registry and checked against exact window aggregates on
// streams whose window contents we replay exactly.

#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "apps/biased.h"
#include "apps/estimator_registry.h"
#include "apps/triangles.h"
#include "stats/exact.h"
#include "stats/tests.h"
#include "stream/value_gen.h"
#include "util/rng.h"

namespace swsample {
namespace {

// Replays a value stream through an estimator and an exact window buffer.
double RunOnStream(WindowEstimator& est, const std::vector<uint64_t>& values,
                   uint64_t n, std::vector<uint64_t>* window_out) {
  std::deque<uint64_t> window;
  for (uint64_t i = 0; i < values.size(); ++i) {
    est.Observe(Item{values[i], i, static_cast<Timestamp>(i)});
    window.push_back(values[i]);
    if (window.size() > n) window.pop_front();
  }
  window_out->assign(window.begin(), window.end());
  return est.Estimate().value;
}

std::vector<uint64_t> ZipfStream(uint64_t len, uint64_t domain, double alpha,
                                 uint64_t seed) {
  auto gen = ZipfValues::Create(domain, alpha).ValueOrDie();
  Rng rng(seed);
  std::vector<uint64_t> values(len);
  for (auto& v : values) v = gen->Next(rng);
  return values;
}

EstimatorConfig SeqConfig(uint64_t n, uint64_t r, uint64_t seed) {
  EstimatorConfig config;
  config.substrate = "bop-seq-single";
  config.window_n = n;
  config.r = r;
  config.seed = seed;
  return config;
}

TEST(FkEstimatorTest, CreateValidation) {
  EXPECT_FALSE(CreateEstimator("ams-fk", SeqConfig(0, 10, 1)).ok());
  EstimatorConfig bad_moment = SeqConfig(8, 10, 1);
  bad_moment.moment = 0;
  EXPECT_FALSE(CreateEstimator("ams-fk", bad_moment).ok());
  EXPECT_FALSE(CreateEstimator("ams-fk", SeqConfig(8, 0, 1)).ok());
}

TEST(FkEstimatorTest, F1IsWindowSize) {
  // F_1 = sum of frequencies = window size; the AMS estimate with k=1 is
  // n * (c - (c-1)) = n exactly, with zero variance.
  EstimatorConfig config = SeqConfig(16, 4, 2);
  config.moment = 1;
  auto est = CreateEstimator("ams-fk", config).ValueOrDie();
  std::vector<uint64_t> window;
  double estimate =
      RunOnStream(*est, ZipfStream(100, 10, 1.0, 3), 16, &window);
  EXPECT_DOUBLE_EQ(estimate, 16.0);
}

TEST(FkEstimatorTest, F2CloseToExactOnSkewedWindow) {
  const uint64_t n = 256;
  auto est = CreateEstimator("ams-fk", SeqConfig(n, 2000, 4)).ValueOrDie();
  std::vector<uint64_t> window;
  double estimate =
      RunOnStream(*est, ZipfStream(3 * n, 8, 1.5, 5), n, &window);
  double exact = ExactFrequencyMoment(window, 2);
  EXPECT_NEAR(estimate / exact, 1.0, 0.15)
      << "estimate=" << estimate << " exact=" << exact;
}

TEST(FkEstimatorTest, F3CloseToExact) {
  const uint64_t n = 256;
  EstimatorConfig config = SeqConfig(n, 4000, 6);
  config.moment = 3;
  auto est = CreateEstimator("ams-fk", config).ValueOrDie();
  std::vector<uint64_t> window;
  double estimate =
      RunOnStream(*est, ZipfStream(3 * n, 6, 1.5, 7), n, &window);
  double exact = ExactFrequencyMoment(window, 3);
  EXPECT_NEAR(estimate / exact, 1.0, 0.2)
      << "estimate=" << estimate << " exact=" << exact;
}

TEST(FkEstimatorTest, UnbiasedOverManyRuns) {
  // Average the estimate over independent runs of the SAME stream: the
  // mean must converge to the exact value (unbiasedness).
  const uint64_t n = 32;
  auto values = ZipfStream(2 * n + 7, 5, 1.2, 8);
  std::vector<uint64_t> window;
  double mean = 0.0;
  const int runs = 400;
  double exact = 0.0;
  for (int r = 0; r < runs; ++r) {
    auto est = CreateEstimator(
                   "ams-fk", SeqConfig(n, 32, Rng::ForkSeed(100, r)))
                   .ValueOrDie();
    mean += RunOnStream(*est, values, n, &window);
  }
  exact = ExactFrequencyMoment(window, 2);
  mean /= runs;
  EXPECT_NEAR(mean / exact, 1.0, 0.08)
      << "mean=" << mean << " exact=" << exact;
}

TEST(FkEstimatorTest, ExactOracleSubstrateMatches) {
  // The exact-seq substrate draws positions from the buffered window; at
  // moment 1 it reports the window size exactly, like the paper substrate.
  EstimatorConfig config = SeqConfig(16, 4, 2);
  config.substrate = "exact-seq";
  config.moment = 1;
  auto est = CreateEstimator("ams-fk", config).ValueOrDie();
  std::vector<uint64_t> window;
  double estimate =
      RunOnStream(*est, ZipfStream(100, 10, 1.0, 3), 16, &window);
  EXPECT_DOUBLE_EQ(estimate, 16.0);
}

TEST(EntropyEstimatorTest, CreateValidation) {
  EXPECT_FALSE(CreateEstimator("ccm-entropy", SeqConfig(0, 10, 1)).ok());
  EXPECT_FALSE(CreateEstimator("ccm-entropy", SeqConfig(8, 0, 1)).ok());
}

TEST(EntropyEstimatorTest, ConstantStreamHasZeroEntropy) {
  // Per-unit estimates are nonzero (c log(n/c) terms), but the estimator is
  // unbiased with H = 0, so a large unit average must be near zero.
  auto est =
      CreateEstimator("ccm-entropy", SeqConfig(32, 4000, 9)).ValueOrDie();
  std::vector<uint64_t> values(100, 7);
  std::vector<uint64_t> window;
  double estimate = RunOnStream(*est, values, 32, &window);
  EXPECT_NEAR(estimate, 0.0, 0.15);
}

TEST(EntropyEstimatorTest, CloseToExactOnZipfWindow) {
  const uint64_t n = 256;
  auto est =
      CreateEstimator("ccm-entropy", SeqConfig(n, 3000, 10)).ValueOrDie();
  std::vector<uint64_t> window;
  double estimate =
      RunOnStream(*est, ZipfStream(3 * n, 16, 1.0, 11), n, &window);
  double exact = ExactEntropy(window);
  EXPECT_NEAR(estimate, exact, 0.15 * exact + 0.05)
      << "estimate=" << estimate << " exact=" << exact;
}

TEST(EntropyEstimatorTest, UniformWindowApproachesLogDomain) {
  const uint64_t n = 512;
  auto est =
      CreateEstimator("ccm-entropy", SeqConfig(n, 3000, 12)).ValueOrDie();
  // Round-robin over 16 values -> exactly uniform window -> H = 4 bits.
  std::vector<uint64_t> values(3 * n);
  for (uint64_t i = 0; i < values.size(); ++i) values[i] = i % 16;
  std::vector<uint64_t> window;
  double estimate = RunOnStream(*est, values, n, &window);
  EXPECT_NEAR(estimate, 4.0, 0.3);
}

TEST(TriangleTest, EdgeCodec) {
  uint32_t a, b;
  DecodeEdge(EncodeEdge(5, 3), &a, &b);
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(b, 5u);
  EXPECT_EQ(EncodeEdge(3, 5), EncodeEdge(5, 3));
}

EstimatorConfig TriangleConfig(uint64_t n, uint32_t v, uint64_t r,
                               uint64_t seed) {
  EstimatorConfig config = SeqConfig(n, r, seed);
  config.num_vertices = v;
  return config;
}

TEST(TriangleTest, CreateValidation) {
  EXPECT_FALSE(
      CreateEstimator("buriol-triangles", TriangleConfig(0, 10, 5, 1)).ok());
  EXPECT_FALSE(
      CreateEstimator("buriol-triangles", TriangleConfig(8, 2, 5, 1)).ok());
  EXPECT_FALSE(
      CreateEstimator("buriol-triangles", TriangleConfig(8, 10, 0, 1)).ok());
}

TEST(TriangleTest, NoTrianglesEstimatesZero) {
  // A star graph has no triangles.
  const uint32_t v = 32;
  auto est = CreateEstimator("buriol-triangles",
                             TriangleConfig(64, v, 500, 13))
                 .ValueOrDie();
  uint64_t idx = 0;
  for (uint32_t leaf = 1; leaf < v; ++leaf) {
    est->Observe(Item{EncodeEdge(0, leaf), idx++, 0});
  }
  EXPECT_DOUBLE_EQ(est->Estimate().value, 0.0);
}

TEST(TriangleTest, PlantedTrianglesExactExpectation) {
  // Distinct-edge window: 10 disjoint triangles, each edge streamed once
  // (grouped per triangle). The estimator detects a triangle exactly via
  // its first edge, so E[estimate] = T3 = 10; a large unit count must land
  // in a comfortable band around it.
  const uint32_t v = 30;
  const uint64_t n = 300;  // window larger than the 30 streamed edges
  auto est = CreateEstimator("buriol-triangles",
                             TriangleConfig(n, v, 20000, 14))
                 .ValueOrDie();
  uint64_t idx = 0;
  for (uint32_t t = 0; t < v / 3; ++t) {
    est->Observe(Item{EncodeEdge(3 * t, 3 * t + 1), idx++, 0});
    est->Observe(Item{EncodeEdge(3 * t + 1, 3 * t + 2), idx++, 0});
    est->Observe(Item{EncodeEdge(3 * t, 3 * t + 2), idx++, 0});
  }
  double estimate = est->Estimate().value;
  EXPECT_GT(estimate, 5.0);
  EXPECT_LT(estimate, 18.0);
}

TEST(TriangleTest, UnbiasedOverManyRuns) {
  // Mean of the estimate over independent runs converges to T3 on a
  // distinct-edge window (3 disjoint triangles + non-closing background).
  const uint32_t v = 24;
  const uint64_t n = 64;
  std::vector<uint64_t> edge_stream;
  for (uint32_t t = 0; t < 3; ++t) {
    edge_stream.push_back(EncodeEdge(3 * t, 3 * t + 1));
    edge_stream.push_back(EncodeEdge(3 * t + 1, 3 * t + 2));
    edge_stream.push_back(EncodeEdge(3 * t, 3 * t + 2));
  }
  // Star background from vertex 20: no extra triangles.
  for (uint32_t leaf = 9; leaf < 20; ++leaf) {
    edge_stream.push_back(EncodeEdge(20, leaf));
  }
  double mean = 0.0;
  const int runs = 300;
  for (int r = 0; r < runs; ++r) {
    auto est = CreateEstimator(
                   "buriol-triangles",
                   TriangleConfig(n, v, 64, Rng::ForkSeed(900, r)))
                   .ValueOrDie();
    uint64_t idx = 0;
    for (uint64_t e : edge_stream) est->Observe(Item{e, idx++, 0});
    mean += est->Estimate().value;
  }
  mean /= runs;
  EXPECT_NEAR(mean, 3.0, 1.0);
}

TEST(BiasedTest, CreateValidation) {
  EXPECT_FALSE(StepBiasedSampler::Create({}, 1).ok());
  EXPECT_FALSE(
      StepBiasedSampler::Create({{8, 1.0}, {8, 1.0}}, 1).ok());  // not increasing
  EXPECT_FALSE(StepBiasedSampler::Create({{8, 0.0}}, 1).ok());  // zero weight
  EXPECT_FALSE(StepBiasedSampler::Create({{8, 1.0}}, 1, "bop-ts-swr").ok());
  EXPECT_FALSE(StepBiasedSampler::Create({{8, 1.0}}, 1, "no-such").ok());
  EXPECT_TRUE(StepBiasedSampler::Create({{8, 1.0}, {32, 1.0}}, 1).ok());
}

TEST(BiasedTest, InclusionProbabilitiesFormStaircase) {
  auto s =
      StepBiasedSampler::Create({{4, 1.0}, {16, 1.0}}, 2).ValueOrDie();
  // Normalized weights: 0.5 each. Age < 4: 0.5/4 + 0.5/16; age in [4,16):
  // 0.5/16; age >= 16: 0.
  EXPECT_NEAR(s->InclusionProbability(0), 0.5 / 4 + 0.5 / 16, 1e-12);
  EXPECT_NEAR(s->InclusionProbability(3), 0.5 / 4 + 0.5 / 16, 1e-12);
  EXPECT_NEAR(s->InclusionProbability(4), 0.5 / 16, 1e-12);
  EXPECT_NEAR(s->InclusionProbability(15), 0.5 / 16, 1e-12);
  EXPECT_DOUBLE_EQ(s->InclusionProbability(16), 0.0);
}

TEST(BiasedTest, EmpiricalDistributionMatchesStaircase) {
  const int trials = 60000;
  std::vector<uint64_t> counts(16, 0);
  for (int t = 0; t < trials; ++t) {
    auto s = StepBiasedSampler::Create({{4, 1.0}, {16, 1.0}},
                                       Rng::ForkSeed(300, t))
                 .ValueOrDie();
    const uint64_t len = 40;
    for (uint64_t i = 0; i < len; ++i) {
      s->Observe(Item{i, i, static_cast<Timestamp>(i)});
    }
    auto sample = s->Sample();
    ASSERT_TRUE(sample.has_value());
    ++counts[len - 1 - sample->index];  // age
  }
  std::vector<double> probs(16);
  auto s = StepBiasedSampler::Create({{4, 1.0}, {16, 1.0}}, 1).ValueOrDie();
  double total = 0.0;
  for (uint64_t age = 0; age < 16; ++age) {
    probs[age] = s->InclusionProbability(age);
    total += probs[age];
  }
  ASSERT_NEAR(total, 1.0, 1e-9);
  auto result = ChiSquareExpected(counts, probs);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(BiasedTest, RecentElementsMoreLikely) {
  auto s = StepBiasedSampler::Create({{8, 2.0}, {64, 1.0}}, 4).ValueOrDie();
  EXPECT_GT(s->InclusionProbability(0), s->InclusionProbability(20));
}

TEST(BiasedTest, MeanEstimatorTracksRecencyWeightedMean) {
  // Old half of the window holds value 0, recent quarter holds 1000: the
  // biased mean must sit between the plain window mean and the recent
  // mean, reflecting the staircase's recency weighting.
  EstimatorConfig config;
  config.substrate = "bop-seq-swr";
  config.window_n = 64;
  config.r = 64;
  config.seed = 6;
  auto est = CreateEstimator("biased-mean", config).ValueOrDie();
  uint64_t i = 0;
  for (; i < 48; ++i) est->Observe(Item{0, i, static_cast<Timestamp>(i)});
  for (; i < 64; ++i) est->Observe(Item{1000, i, static_cast<Timestamp>(i)});
  EstimateReport report = est->Estimate();
  // Plain window mean = 250; recent-16 mean = 1000; the default two-level
  // staircase averages the full window (mean 250) and the last 16 (1000)
  // at weight 1/2 each -> expectation 625.
  EXPECT_GT(report.value, 400.0);
  EXPECT_LT(report.value, 850.0);
  EXPECT_GT(report.support, 0u);
}

}  // namespace
}  // namespace swsample
