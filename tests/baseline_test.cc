// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the baseline samplers. They must be CORRECT (uniform) -- the
// paper's criticism is their randomized memory, not their distribution --
// so the same uniformity bar applies, plus checks of their characteristic
// weaknesses (random chain length, over-sampling failures).

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/bounded_priority_sampler.h"
#include "baseline/chain_sampler.h"
#include "baseline/exact_window.h"
#include "baseline/oversampler.h"
#include "baseline/priority_sampler.h"
#include "stats/tests.h"

namespace swsample {
namespace {

Item MakeItem(uint64_t i) { return Item{i, i, static_cast<Timestamp>(i)}; }

TEST(ChainSamplerTest, CreateValidation) {
  EXPECT_FALSE(ChainSampler::Create(0, 1, 1).ok());
  EXPECT_FALSE(ChainSampler::Create(8, 0, 1).ok());
}

TEST(ChainSamplerTest, SampleAlwaysInWindow) {
  const uint64_t n = 16;
  auto s = ChainSampler::Create(n, 3, 2).ValueOrDie();
  for (uint64_t i = 0; i < 20 * n; ++i) {
    s->Observe(MakeItem(i));
    const uint64_t lo = (i + 1 > n) ? i + 1 - n : 0;
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), 3u);
    for (const Item& item : sample) {
      EXPECT_GE(item.index, lo);
      EXPECT_LE(item.index, i);
    }
  }
}

TEST(ChainSamplerTest, Uniform) {
  const uint64_t n = 10;
  const int trials = 30000;
  const uint64_t len = 37;
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    auto s = ChainSampler::Create(n, 1, 100 + t).ValueOrDie();
    for (uint64_t i = 0; i < len; ++i) s->Observe(MakeItem(i));
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), 1u);
    ++counts[sample[0].index - (len - n)];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(ChainSamplerTest, ChainLengthIsRandomVariable) {
  // The paper's disadvantage (b): with many units over a long run, chain
  // lengths fluctuate; record that maxima above 3 occur (they do whp).
  auto s = ChainSampler::Create(256, 16, 3).ValueOrDie();
  uint64_t max_chain = 0;
  for (uint64_t i = 0; i < 1 << 14; ++i) {
    s->Observe(MakeItem(i));
    max_chain = std::max(max_chain, s->MaxChainLength());
  }
  EXPECT_GE(max_chain, 3u);
}

TEST(PrioritySamplerTest, SampleAlwaysActive) {
  auto s = PrioritySampler::Create(12, 2, 4).ValueOrDie();
  for (Timestamp t = 0; t < 300; ++t) {
    s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    for (const Item& item : s->Sample()) EXPECT_LT(t - item.timestamp, 12);
  }
}

TEST(PrioritySamplerTest, Uniform) {
  const Timestamp t0 = 9;
  const int trials = 30000;
  std::vector<uint64_t> counts(t0, 0);
  for (int t = 0; t < trials; ++t) {
    auto s = PrioritySampler::Create(t0, 1, 500 + t).ValueOrDie();
    for (Timestamp i = 0; i < 25; ++i) {
      s->Observe(Item{static_cast<uint64_t>(i), static_cast<uint64_t>(i), i});
    }
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), 1u);
    ++counts[sample[0].index - (25 - t0)];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(PrioritySamplerTest, StaircaseDescending) {
  auto s = PrioritySampler::Create(50, 1, 6).ValueOrDie();
  for (Timestamp t = 0; t < 200; ++t) {
    s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
  }
  // Indirect check: memory stays small-ish (expected O(log n)).
  EXPECT_LT(s->MaxListLength(), 50u);
  EXPECT_GE(s->MaxListLength(), 1u);
}

TEST(BoundedPriorityTest, KDistinctActive) {
  auto s = BoundedPrioritySampler::Create(20, 5, 7).ValueOrDie();
  for (Timestamp t = 0; t < 200; ++t) {
    s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    if (t < 4) continue;
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), std::min<uint64_t>(5, t + 1));
    std::set<uint64_t> idx;
    for (const Item& item : sample) {
      EXPECT_LT(t - item.timestamp, 20);
      idx.insert(item.index);
    }
    EXPECT_EQ(idx.size(), sample.size());
  }
}

TEST(BoundedPriorityTest, SubsetsUniform) {
  const Timestamp t0 = 6;
  const int trials = 60000;
  std::map<std::vector<uint64_t>, uint64_t> counts;
  for (int t = 0; t < trials; ++t) {
    auto s = BoundedPrioritySampler::Create(t0, 2, 900 + t).ValueOrDie();
    for (Timestamp i = 0; i < 17; ++i) {
      s->Observe(Item{static_cast<uint64_t>(i), static_cast<uint64_t>(i), i});
    }
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), 2u);
    std::vector<uint64_t> key;
    for (const Item& item : sample) key.push_back(item.index);
    std::sort(key.begin(), key.end());
    ++counts[key];
  }
  ASSERT_EQ(counts.size(), 15u);
  std::vector<uint64_t> flat;
  for (const auto& [key, c] : counts) flat.push_back(c);
  auto result = ChiSquareUniform(flat);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(BoundedPriorityTest, RetainedSetBounded) {
  auto s = BoundedPrioritySampler::Create(1 << 12, 4, 8).ValueOrDie();
  uint64_t max_len = 0;
  uint64_t index = 0;
  for (Timestamp t = 0; t < (1 << 13); ++t) {
    s->Observe(Item{index, index, t});
    ++index;
    max_len = std::max(max_len, s->ListLength());
  }
  // E[len] = O(k log(n/k)); generous deterministic-looking cap for the test.
  EXPECT_LT(max_len, 400u);
}

TEST(OverSamplerTest, CreateValidation) {
  EXPECT_FALSE(OverSampler::Create(4, 5, 2, 1).ok());  // k > n
  EXPECT_FALSE(OverSampler::Create(8, 2, 0, 1).ok());  // factor 0
}

TEST(OverSamplerTest, ProducesDistinctSamples) {
  auto s = OverSampler::Create(32, 4, 8, 2).ValueOrDie();
  for (uint64_t i = 0; i < 256; ++i) s->Observe(MakeItem(i));
  auto sample = s->Sample();
  std::set<uint64_t> idx;
  for (const Item& item : sample) idx.insert(item.index);
  EXPECT_EQ(idx.size(), sample.size());
  EXPECT_LE(sample.size(), 4u);
}

TEST(OverSamplerTest, SmallFactorFails) {
  // factor=1 with k close to n: duplicates among k with-replacement draws
  // are common, so failures must occur -- disadvantage (b). Query after
  // every arrival so the underlying samples re-randomize between queries.
  auto s = OverSampler::Create(4, 3, 1, 3).ValueOrDie();
  for (uint64_t i = 0; i < 300; ++i) {
    s->Observe(MakeItem(i));
    s->Sample();
  }
  EXPECT_GT(s->failure_count(), 0u);
  EXPECT_EQ(s->query_count(), 300u);
}

TEST(OverSamplerTest, LargeFactorRarelyFails) {
  auto s = OverSampler::Create(64, 2, 10, 4).ValueOrDie();
  for (uint64_t i = 0; i < 256; ++i) s->Observe(MakeItem(i));
  for (int q = 0; q < 300; ++q) s->Sample();
  EXPECT_LT(s->failure_count(), 5u);
}

TEST(ExactWindowTest, SequenceEviction) {
  auto w = ExactWindow::CreateSequence(4, 1, true, 5).ValueOrDie();
  for (uint64_t i = 0; i < 10; ++i) w->Observe(MakeItem(i));
  ASSERT_EQ(w->size(), 4u);
  EXPECT_EQ(w->contents().front().index, 6u);
  EXPECT_EQ(w->contents().back().index, 9u);
}

TEST(ExactWindowTest, TimestampEviction) {
  auto w = ExactWindow::CreateTimestamp(5, 1, true, 6).ValueOrDie();
  w->Observe(Item{0, 0, 0});
  w->Observe(Item{1, 1, 3});
  w->Observe(Item{2, 2, 4});
  w->AdvanceTime(5);  // item at t=0 expires (5-0 >= 5)
  EXPECT_EQ(w->size(), 2u);
  w->AdvanceTime(8);
  EXPECT_EQ(w->size(), 1u);
  w->AdvanceTime(9);
  EXPECT_EQ(w->size(), 0u);
}

TEST(ExactWindowTest, WithReplacementUniform) {
  auto w = ExactWindow::CreateSequence(8, 1, true, 7).ValueOrDie();
  for (uint64_t i = 0; i < 20; ++i) w->Observe(MakeItem(i));
  std::vector<uint64_t> counts(8, 0);
  for (int t = 0; t < 40000; ++t) {
    auto sample = w->Sample();
    ASSERT_EQ(sample.size(), 1u);
    ++counts[sample[0].index - 12];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4);
}

TEST(ExactWindowTest, WithoutReplacementDistinct) {
  auto w = ExactWindow::CreateSequence(10, 4, false, 8).ValueOrDie();
  for (uint64_t i = 0; i < 25; ++i) w->Observe(MakeItem(i));
  for (int t = 0; t < 200; ++t) {
    auto sample = w->Sample();
    ASSERT_EQ(sample.size(), 4u);
    std::set<uint64_t> idx;
    for (const Item& item : sample) idx.insert(item.index);
    EXPECT_EQ(idx.size(), 4u);
  }
}

TEST(ExactWindowTest, MemoryIsLinear) {
  auto w = ExactWindow::CreateSequence(1 << 10, 1, true, 9).ValueOrDie();
  for (uint64_t i = 0; i < 1 << 12; ++i) w->Observe(MakeItem(i));
  EXPECT_GE(w->MemoryWords(), (uint64_t{1} << 10) * kWordsPerItem);
}

}  // namespace
}  // namespace swsample
