// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the bounded-space priority sampler (the Gemulla regime): it
// behaves like ordinary priority sampling when the budget is ample, is
// uniform conditioned on availability, and DOES fail under bursts when the
// budget is tight -- the "no global availability guarantee" the paper
// contrasts its deterministic structures against.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/budget_priority_sampler.h"
#include "stats/tests.h"

namespace swsample {
namespace {

TEST(BudgetPriorityTest, CreateValidation) {
  EXPECT_FALSE(BudgetPrioritySampler::Create(0, 4, 1).ok());
  EXPECT_FALSE(BudgetPrioritySampler::Create(5, 0, 1).ok());
  EXPECT_TRUE(BudgetPrioritySampler::Create(5, 4, 1).ok());
}

TEST(BudgetPriorityTest, AmpleBudgetNeverFails) {
  auto s = BudgetPrioritySampler::Create(16, 64, 2).ValueOrDie();
  for (Timestamp t = 0; t < 500; ++t) {
    s.Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    auto sample = s.Sample();
    ASSERT_TRUE(sample.has_value()) << "t=" << t;
    EXPECT_LT(t - sample->timestamp, 16);
  }
  EXPECT_EQ(s.failure_count(), 0u);
}

TEST(BudgetPriorityTest, AmpleBudgetUniform) {
  const Timestamp t0 = 8;
  const int trials = 30000;
  std::vector<uint64_t> counts(t0, 0);
  for (int trial = 0; trial < trials; ++trial) {
    auto s = BudgetPrioritySampler::Create(t0, 64, 100 + trial).ValueOrDie();
    for (Timestamp t = 0; t < 21; ++t) {
      s.Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    }
    auto sample = s.Sample();
    ASSERT_TRUE(sample.has_value());
    ++counts[sample->index - (21 - t0)];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(BudgetPriorityTest, TightBudgetGoesDarkAfterBurstExpiry) {
  // Capacity 1: the retained entry is the max-priority element of the
  // burst. Once it expires, nothing is left although newer arrivals came
  // and went through the staircase -- the sampler goes dark while the
  // window still holds recent items IF those were dropped by the budget.
  auto s = BudgetPrioritySampler::Create(10, 1, 3).ValueOrDie();
  uint64_t dark_queries = 0;
  uint64_t index = 0;
  Timestamp t = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    // Big burst: the budgeted slot retains the burst's max priority.
    for (int i = 0; i < 100; ++i) s.Observe(Item{index, index++, t});
    // A lone follow-up arrival: with probability 100/101 its priority
    // loses to the retained one and the budget DROPS it ...
    s.Observe(Item{index, index++, t + 5});
    // ... so when the burst expires, the follow-up is still active (it
    // expires at t+5+10) but nothing is retained: a dark query.
    s.AdvanceTime(t + 11);
    if (!s.Sample().has_value()) ++dark_queries;
    t += 40;  // let everything drain before the next cycle
    s.AdvanceTime(t);
  }
  // 20 cycles at ~99% dark probability each: at least one (in fact most)
  // must go dark.
  EXPECT_GT(dark_queries, 10u);
}

TEST(BudgetPriorityTest, FailureRateDecreasesWithCapacity) {
  auto run = [](uint64_t capacity) {
    auto s = BudgetPrioritySampler::Create(8, capacity, 7).ValueOrDie();
    uint64_t index = 0;
    uint64_t dark = 0;
    Rng rng(11);
    for (Timestamp t = 0; t < 3000; ++t) {
      // Bursty: mostly silent, occasional bursts of 20.
      if (rng.Bernoulli(0.15)) {
        for (int i = 0; i < 20; ++i) s.Observe(Item{index, index++, t});
      } else {
        s.AdvanceTime(t);
      }
      // Dark queries include genuinely-empty windows, but those occur
      // identically for both capacities (same arrival seed), so the
      // comparison isolates budget-induced failures.
      if (index > 0 && !s.Sample().has_value()) ++dark;
    }
    return dark;
  };
  const uint64_t dark_small = run(1);
  const uint64_t dark_large = run(256);
  EXPECT_GT(dark_small, dark_large);
}

}  // namespace
}  // namespace swsample
