// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Crash-resume determinism across the WHOLE registry surface, plus the
// driver-level checkpoint subsystem:
//
//   (1) every registered sampler round-trips through the checkpoint
//       envelope and resumes bit-identically (lockstep sweep);
//   (2) every registered estimator x compatible substrate does too;
//   (3) truncation of every envelope is rejected at every offset, and
//       random byte corruption never crashes restore or first queries;
//   (4) StreamDriver checkpoint -> fresh process (new objects) -> resume
//       reproduces an uninterrupted run's final state bit for bit;
//   (5) ShardedStreamDriver ditto, in both partition modes, including
//       the persisted un-flushed router buffers;
//   (6) manifest/layout errors surface as Status, never crashes.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/estimator_checkpoint.h"
#include "apps/sink_spec.h"
#include "apps/estimator_registry.h"
#include "apps/triangles.h"
#include "core/checkpoint.h"
#include "core/registry.h"
#include "stream/checkpoint.h"
#include "stream/driver.h"
#include "stream/sharded_driver.h"
#include "util/rng.h"

namespace swsample {
namespace {

constexpr uint64_t kWindowN = 48;
constexpr Timestamp kWindowT = 25;
constexpr uint32_t kVertices = 12;

SamplerConfig MatrixSamplerConfig(const SamplerSpec& spec, uint64_t seed) {
  SamplerConfig config;
  config.window_n = kWindowN;
  config.window_t = kWindowT;
  config.k = spec.single_sample ? 1 : 4;
  config.seed = seed;
  return config;
}

/// One reproducible burst stream; `edges` makes values valid
/// EncodeEdge() encodings (the triangle estimator's input contract).
class BurstStream {
 public:
  explicit BurstStream(uint64_t seed, bool edges)
      : rng_(seed), edges_(edges) {}

  std::vector<Item> Step(Timestamp t) {
    std::vector<Item> burst;
    const uint64_t size = rng_.UniformIndex(4);  // 0..3 arrivals
    for (uint64_t i = 0; i < size; ++i) {
      burst.push_back(Item{NextValue(), index_++, t});
    }
    return burst;
  }

 private:
  uint64_t NextValue() {
    if (!edges_) return rng_.UniformIndex(1 << 12);
    const uint32_t a = static_cast<uint32_t>(rng_.UniformIndex(kVertices));
    uint32_t b = a;
    while (b == a) {
      b = static_cast<uint32_t>(rng_.UniformIndex(kVertices));
    }
    return EncodeEdge(a, b);
  }

  Rng rng_;
  bool edges_;
  uint64_t index_ = 0;
};

TEST(CheckpointMatrixTest, EverySamplerResumesExactly) {
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    SCOPED_TRACE(spec.name);
    const bool timestamped = spec.model == WindowModel::kTimestamp;
    SamplerConfig config = MatrixSamplerConfig(spec, 0xc0ffee);
    auto original = CreateSampler(spec.name, config).ValueOrDie();
    ASSERT_TRUE(original->persistable()) << spec.name;

    BurstStream stream(17, /*edges=*/false);
    for (Timestamp t = 0; t < 150; ++t) {
      for (const Item& item : stream.Step(t)) original->Observe(item);
      if (timestamped) original->AdvanceTime(t);
    }
    std::string blob = SaveSampler(*original, config).ValueOrDie();
    auto restored = RestoreSampler(blob).ValueOrDie();
    EXPECT_STREQ(restored->name(), spec.name);

    for (Timestamp t = 150; t < 300; ++t) {
      for (const Item& item : stream.Step(t)) {
        original->Observe(item);
        restored->Observe(item);
      }
      if (timestamped) {
        original->AdvanceTime(t);
        restored->AdvanceTime(t);
      }
      auto a = original->Sample();
      auto b = restored->Sample();
      ASSERT_EQ(a.size(), b.size()) << spec.name << " t=" << t;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << spec.name << " t=" << t << " slot=" << i;
      }
      ASSERT_EQ(original->MemoryWords(), restored->MemoryWords())
          << spec.name << " t=" << t;
    }
  }
}

EstimatorConfig MatrixEstimatorConfig(const EstimatorSpec& spec,
                                      const SamplerSpec& substrate,
                                      uint64_t seed) {
  EstimatorConfig config;
  config.substrate = substrate.name;
  config.window_n = kWindowN;
  config.window_t = kWindowT;
  // dkw-quantile refuses r > 1 on single-sample substrates.
  config.r = (substrate.single_sample &&
              std::string_view(spec.name) == "dkw-quantile")
                 ? 1
                 : 4;
  config.seed = seed;
  config.num_vertices = kVertices;
  return config;
}

TEST(CheckpointMatrixTest, EveryEstimatorSubstrateResumesExactly) {
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    const bool edges = std::string_view(spec.name) == "buriol-triangles";
    for (const char* substrate_name : spec.substrates) {
      SCOPED_TRACE(std::string(spec.name) + " over " + substrate_name);
      const SamplerSpec* substrate = FindSamplerSpec(substrate_name);
      ASSERT_NE(substrate, nullptr);
      const bool timestamped = substrate->model == WindowModel::kTimestamp;
      EstimatorConfig config =
          MatrixEstimatorConfig(spec, *substrate, 0xf00d);
      auto original = CreateEstimator(spec.name, config).ValueOrDie();
      ASSERT_TRUE(original->persistable())
          << spec.name << " over " << substrate_name;

      BurstStream stream(23, edges);
      for (Timestamp t = 0; t < 120; ++t) {
        for (const Item& item : stream.Step(t)) original->Observe(item);
        if (timestamped) original->AdvanceTime(t);
      }
      std::string blob = SaveEstimator(*original, config).ValueOrDie();
      auto restored = RestoreEstimator(blob).ValueOrDie();
      EXPECT_STREQ(restored->name(), spec.name);

      for (Timestamp t = 120; t < 220; ++t) {
        for (const Item& item : stream.Step(t)) {
          original->Observe(item);
          restored->Observe(item);
        }
        if (timestamped) {
          original->AdvanceTime(t);
          restored->AdvanceTime(t);
        }
        // Estimates consume fresh randomness: equality is exact only
        // because the restored RNG streams are bit-identical.
        if (t % 10 == 0) {
          EstimateReport a = original->Estimate();
          EstimateReport b = restored->Estimate();
          ASSERT_EQ(a.metric, b.metric);
          ASSERT_EQ(a.value, b.value)
              << spec.name << " over " << substrate_name << " t=" << t;
          ASSERT_EQ(a.window_size, b.window_size);
          ASSERT_EQ(a.support, b.support);
          ASSERT_EQ(original->MemoryWords(), restored->MemoryWords());
        }
      }
    }
  }
}

/// Builds one warmed-up envelope per registered sampler and per
/// estimator x substrate pair (every envelope shape the library emits).
std::vector<std::string> AllEnvelopes() {
  std::vector<std::string> blobs;
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    SamplerConfig config = MatrixSamplerConfig(spec, 99);
    auto sampler = CreateSampler(spec.name, config).ValueOrDie();
    BurstStream stream(5, /*edges=*/false);
    for (Timestamp t = 0; t < 80; ++t) {
      for (const Item& item : stream.Step(t)) sampler->Observe(item);
      if (spec.model == WindowModel::kTimestamp) sampler->AdvanceTime(t);
    }
    blobs.push_back(SaveSampler(*sampler, config).ValueOrDie());
  }
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    const bool edges = std::string_view(spec.name) == "buriol-triangles";
    for (const char* substrate_name : spec.substrates) {
      const SamplerSpec* substrate = FindSamplerSpec(substrate_name);
      EstimatorConfig config = MatrixEstimatorConfig(spec, *substrate, 7);
      auto estimator = CreateEstimator(spec.name, config).ValueOrDie();
      BurstStream stream(11, edges);
      for (Timestamp t = 0; t < 80; ++t) {
        for (const Item& item : stream.Step(t)) estimator->Observe(item);
        if (substrate->model == WindowModel::kTimestamp) {
          estimator->AdvanceTime(t);
        }
      }
      blobs.push_back(SaveEstimator(*estimator, config).ValueOrDie());
    }
  }
  return blobs;
}

Result<std::unique_ptr<StreamSink>> RestoreAny(const std::string& blob) {
  auto kind = PeekCheckpointKind(blob);
  if (!kind.ok()) return kind.status();
  if (kind.value() == CheckpointKind::kSampler) {
    auto sampler = RestoreSampler(blob);
    if (!sampler.ok()) return sampler.status();
    return std::unique_ptr<StreamSink>(std::move(sampler).ValueOrDie());
  }
  auto estimator = RestoreEstimator(blob);
  if (!estimator.ok()) return estimator.status();
  return std::unique_ptr<StreamSink>(std::move(estimator).ValueOrDie());
}

TEST(CheckpointFuzzTest, TruncationIsRejectedOnEveryEnvelope) {
  for (const std::string& blob : AllEnvelopes()) {
    ASSERT_TRUE(RestoreAny(blob).ok());
    for (size_t cut = 0; cut < blob.size();
         cut += 1 + blob.size() / 97) {  // ~97 cuts per envelope
      ASSERT_FALSE(RestoreAny(blob.substr(0, cut)).ok()) << "cut=" << cut;
    }
  }
}

TEST(CheckpointFuzzTest, ByteCorruptionNeverCrashes) {
  Rng rng(0xfadedace);
  for (const std::string& blob : AllEnvelopes()) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string corrupt = blob;
      const size_t pos = rng.UniformIndex(corrupt.size());
      corrupt[pos] = static_cast<char>(corrupt[pos] ^
                                       (1u << rng.UniformIndex(8)));
      auto restored = RestoreAny(corrupt);
      if (!restored.ok()) continue;  // rejected: fine
      // A flipped value byte can still parse; queries must not crash.
      StreamSink& sink = *restored.value();
      sink.MemoryWords();
      if (auto* sampler = dynamic_cast<WindowSampler*>(&sink)) {
        sampler->Sample();
      } else if (auto* estimator = dynamic_cast<WindowEstimator*>(&sink)) {
        estimator->Estimate();
      }
    }
  }
}

// ---------------------------------------------------------------------
// Driver-level checkpoint/resume.

namespace fs = std::filesystem;

/// Writes `lines` of "<value>" (or "<t> <value>") events; returns path.
std::string WriteStreamFile(const std::string& name, uint64_t lines,
                            bool timestamped, uint64_t seed) {
  const std::string path = testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  Rng rng(seed);
  Timestamp ts = 0;
  for (uint64_t i = 0; i < lines; ++i) {
    const uint64_t value = rng.UniformIndex(1 << 14);
    if (timestamped) {
      ts += rng.UniformIndex(2);  // non-decreasing, frequent ties
      std::fprintf(f, "%lld %llu\n", static_cast<long long>(ts),
                   static_cast<unsigned long long>(value));
    } else {
      std::fprintf(f, "%llu\n", static_cast<unsigned long long>(value));
    }
  }
  std::fclose(f);
  return path;
}

/// Copies the first `lines` lines of `path` to a new file (the "crashed
/// before the rest arrived" input).
std::string TruncateFile(const std::string& path, uint64_t lines) {
  const std::string prefix_path = path + ".prefix";
  std::FILE* in = std::fopen(path.c_str(), "r");
  std::FILE* out = std::fopen(prefix_path.c_str(), "w");
  EXPECT_NE(in, nullptr);
  EXPECT_NE(out, nullptr);
  char line[256];
  for (uint64_t i = 0; i < lines && std::fgets(line, sizeof(line), in); ++i) {
    std::fputs(line, out);
  }
  std::fclose(in);
  std::fclose(out);
  return prefix_path;
}

TEST(DriverCheckpointTest, SingleSinkResumeMatchesUninterruptedRun) {
  const std::string stream =
      WriteStreamFile("ckpt_single.txt", 5000, /*timestamped=*/false, 31);
  const std::string prefix = TruncateFile(stream, 3000);
  const std::string dir = testing::TempDir() + "ckpt_single_dir";
  fs::remove_all(dir);

  SamplerConfig config;
  config.window_n = 64;
  config.k = 8;
  config.seed = 0x5eed;

  StreamDriver::Options options;
  options.batch_size = 128;
  StreamDriver driver(options);

  // Uninterrupted reference run.
  auto reference = CreateSampler("bop-seq-swor", config).ValueOrDie();
  ASSERT_TRUE(driver.DriveFile(stream, false, *reference).ok());

  // Crashed run: ingest only the prefix, checkpointing as it goes. (The
  // sink object dies with this scope — recovery must come from disk.)
  {
    auto crashed = CreateSampler("bop-seq-swor", config).ValueOrDie();
    CheckpointPolicy policy;
    policy.dir = dir;
    policy.every_items = 1000;
    CheckpointWriter writer(
        policy, MakeSinkSerializers(SamplerSinkSpec("bop-seq-swor", config), 1)
                    .ValueOrDie());
    auto report = driver.DriveFileCheckpointed(prefix, false, *crashed,
                                               &writer, nullptr);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    // Checkpoints land on batch boundaries: 1024 and 2048.
    EXPECT_EQ(writer.last_written_items(), 2048u);
  }

  // Resume in a "new process": restore from disk, replay the full input.
  auto resumed = StreamDriver::ResumeFrom(dir);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed.value().samplers.size(), 1u);
  EXPECT_EQ(resumed.value().position.items, 2048u);
  auto report = driver.DriveFileCheckpointed(
      stream, false, *resumed.value().sinks[0], nullptr,
      &resumed.value().position);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().items, 5000u - 2048u);

  // Bit-identical final state: every subsequent draw agrees.
  for (int q = 0; q < 20; ++q) {
    auto a = reference->Sample();
    auto b = resumed.value().samplers[0]->Sample();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  }
}

// Timestamp-window sampler cut mid-run: the stream has same-timestamp
// plateaus of 96 items (well above the batched run-append cutover) with a
// bursty clock jump every tenth plateau, and the checkpoint cadence lands
// the cut (2048 = batch boundary) INSIDE a plateau. Resuming must replay
// with the same batch segmentation and reproduce the uninterrupted run's
// state bit for bit -- the contract the horizon-scanned batched expiry
// and closed-form run append guarantee at batch boundaries.
TEST(DriverCheckpointTest, TsSamplerResumeCutInsideSameTimestampRun) {
  const std::string path = testing::TempDir() + "ckpt_ts_run.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    Rng rng(91);
    for (uint64_t i = 0; i < 5000; ++i) {
      const uint64_t run = i / 96;
      const Timestamp ts = static_cast<Timestamp>(run + (run / 10) * 13);
      std::fprintf(f, "%lld %llu\n", static_cast<long long>(ts),
                   static_cast<unsigned long long>(rng.UniformIndex(1 << 14)));
    }
    std::fclose(f);
  }
  const std::string prefix = TruncateFile(path, 3000);
  const std::string dir = testing::TempDir() + "ckpt_ts_run_dir";
  fs::remove_all(dir);

  SamplerConfig config;
  config.window_t = 25;
  config.k = 8;
  config.seed = 0x7ead;

  StreamDriver::Options options;
  options.batch_size = 128;
  StreamDriver driver(options);

  auto reference = CreateSampler("bop-ts-swor", config).ValueOrDie();
  ASSERT_TRUE(driver.DriveFile(path, true, *reference).ok());

  {
    auto crashed = CreateSampler("bop-ts-swor", config).ValueOrDie();
    CheckpointPolicy policy;
    policy.dir = dir;
    policy.every_items = 1000;
    CheckpointWriter writer(
        policy, MakeSinkSerializers(SamplerSinkSpec("bop-ts-swor", config), 1)
                    .ValueOrDie());
    auto report =
        driver.DriveFileCheckpointed(prefix, true, *crashed, &writer, nullptr);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    // 2048 is not a multiple of the 96-item plateau length, so the saved
    // state ends mid-run with pending same-timestamp arrivals.
    EXPECT_EQ(writer.last_written_items(), 2048u);
  }

  auto resumed = StreamDriver::ResumeFrom(dir);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed.value().samplers.size(), 1u);
  EXPECT_EQ(resumed.value().position.items, 2048u);
  auto report = driver.DriveFileCheckpointed(
      path, true, *resumed.value().sinks[0], nullptr,
      &resumed.value().position);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().items, 5000u - 2048u);

  for (int q = 0; q < 20; ++q) {
    auto a = reference->Sample();
    auto b = resumed.value().samplers[0]->Sample();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  }
}

TEST(DriverCheckpointTest, SingleEstimatorResumeMatchesUninterruptedRun) {
  const std::string stream =
      WriteStreamFile("ckpt_est.txt", 4000, /*timestamped=*/true, 41);
  const std::string prefix = TruncateFile(stream, 2500);
  const std::string dir = testing::TempDir() + "ckpt_est_dir";
  fs::remove_all(dir);

  EstimatorConfig config;
  config.substrate = "bop-ts-single";
  config.window_t = 40;
  config.r = 16;
  config.seed = 0xabba;

  StreamDriver::Options options;
  options.batch_size = 256;
  StreamDriver driver(options);

  auto reference = CreateEstimator("ams-fk", config).ValueOrDie();
  ASSERT_TRUE(driver.DriveFile(stream, true, *reference).ok());

  {
    auto crashed = CreateEstimator("ams-fk", config).ValueOrDie();
    CheckpointPolicy policy;
    policy.dir = dir;
    policy.every_items = 800;
    CheckpointWriter writer(
        policy,
        MakeSinkSerializers(EstimatorSinkSpec("ams-fk", config), 1).ValueOrDie());
    ASSERT_TRUE(driver
                    .DriveFileCheckpointed(prefix, true, *crashed, &writer,
                                           nullptr)
                    .ok());
    EXPECT_GT(writer.last_written_items(), 0u);
  }

  auto resumed = StreamDriver::ResumeFrom(dir);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed.value().estimators.size(), 1u);
  ASSERT_TRUE(driver
                  .DriveFileCheckpointed(stream, true,
                                         *resumed.value().sinks[0], nullptr,
                                         &resumed.value().position)
                  .ok());

  for (int q = 0; q < 5; ++q) {
    EstimateReport a = reference->Estimate();
    EstimateReport b = resumed.value().estimators[0]->Estimate();
    ASSERT_EQ(a.value, b.value);
    ASSERT_EQ(a.window_size, b.window_size);
    ASSERT_EQ(a.support, b.support);
  }
}

TEST(DriverCheckpointTest, ShardedChunksResumeMatchesUninterruptedRun) {
  const std::string stream =
      WriteStreamFile("ckpt_sharded.txt", 6000, /*timestamped=*/false, 51);
  const std::string prefix = TruncateFile(stream, 3500);
  const std::string dir = testing::TempDir() + "ckpt_sharded_dir";
  fs::remove_all(dir);

  SamplerConfig config;
  config.window_n = 64;
  config.k = 4;
  config.seed = 0xd1ce;
  const uint64_t kShards = 4;

  ShardedStreamDriver::Options options;
  options.threads = 2;
  options.chunk_items = 64;
  options.partition = ShardPartition::kChunks;
  ShardedStreamDriver driver(options);

  auto reference =
      CreateShardedSinks(SamplerSinkSpec("bop-seq-swor", config), kShards).ValueOrDie();
  {
    auto sinks = SinkPointers(reference);
    ASSERT_TRUE(driver.DriveFile(stream, false, sinks).ok());
  }

  {
    auto crashed =
        CreateShardedSinks(SamplerSinkSpec("bop-seq-swor", config), kShards).ValueOrDie();
    auto sinks = SinkPointers(crashed);
    CheckpointPolicy policy;
    policy.dir = dir;
    policy.every_items = 1000;
    CheckpointWriter writer(
        policy, MakeSinkSerializers(SamplerSinkSpec("bop-seq-swor", config), kShards)
                    .ValueOrDie());
    auto report =
        driver.DriveFileCheckpointed(prefix, false, sinks, &writer, nullptr);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(writer.last_written_items(), 3000u);
  }

  auto resumed = ShardedStreamDriver::ResumeFrom(dir);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed.value().samplers.size(), kShards);
  EXPECT_EQ(resumed.value().position.items, 3000u);
  // The manifest carries the un-flushed router buffer (3000 % 64 != 0).
  uint64_t pending_items = 0;
  for (const auto& buffer : resumed.value().position.pending) {
    pending_items += buffer.size();
  }
  EXPECT_EQ(pending_items, 3000u % 64);
  {
    auto sinks = resumed.value().sinks;
    auto report = driver.DriveFileCheckpointed(
        stream, false, sinks, nullptr, &resumed.value().position);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  for (uint64_t s = 0; s < kShards; ++s) {
    auto a = reference[s].sampler->Sample();
    auto b = resumed.value().samplers[s]->Sample();
    ASSERT_EQ(a.size(), b.size()) << "shard " << s;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "shard " << s << " slot " << i;
    }
  }
}

TEST(DriverCheckpointTest, ShardedKeyHashEstimatorResumeMatches) {
  const std::string stream =
      WriteStreamFile("ckpt_keyhash.txt", 5000, /*timestamped=*/true, 61);
  const std::string prefix = TruncateFile(stream, 2600);
  const std::string dir = testing::TempDir() + "ckpt_keyhash_dir";
  fs::remove_all(dir);

  EstimatorConfig config;
  config.substrate = "bop-ts-single";
  config.window_t = 50;
  config.r = 8;
  config.seed = 0xcafe;
  const uint64_t kShards = 3;

  ShardedStreamDriver::Options options;
  options.threads = 2;
  options.chunk_items = 128;
  options.partition = ShardPartition::kKeyHash;
  ShardedStreamDriver driver(options);

  auto reference =
      CreateShardedSinks(EstimatorSinkSpec("ams-fk", config), kShards).ValueOrDie();
  {
    auto sinks = SinkPointers(reference);
    ASSERT_TRUE(driver.DriveFile(stream, true, sinks).ok());
  }

  {
    auto crashed =
        CreateShardedSinks(EstimatorSinkSpec("ams-fk", config), kShards).ValueOrDie();
    auto sinks = SinkPointers(crashed);
    CheckpointPolicy policy;
    policy.dir = dir;
    policy.every_items = 700;
    CheckpointWriter writer(
        policy, MakeSinkSerializers(EstimatorSinkSpec("ams-fk", config), kShards)
                    .ValueOrDie());
    ASSERT_TRUE(
        driver.DriveFileCheckpointed(prefix, true, sinks, &writer, nullptr)
            .ok());
  }

  auto resumed = ShardedStreamDriver::ResumeFrom(dir);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed.value().estimators.size(), kShards);
  {
    auto sinks = resumed.value().sinks;
    ASSERT_TRUE(driver
                    .DriveFileCheckpointed(stream, true, sinks, nullptr,
                                           &resumed.value().position)
                    .ok());
  }

  auto ref_ptrs = EstimatorPointers(reference).ValueOrDie();
  auto res_ptrs = EstimatorPointers(resumed.value().estimators);
  auto merged_ref = MergedEstimate(ref_ptrs).ValueOrDie();
  auto merged_res = MergedEstimate(res_ptrs).ValueOrDie();
  EXPECT_EQ(merged_ref.value, merged_res.value);
  EXPECT_EQ(merged_ref.window_size, merged_res.window_size);
  EXPECT_EQ(merged_ref.support, merged_res.support);
}

TEST(DriverCheckpointTest, ResumeRejectsMismatchedGeometryAndBadDirs) {
  EXPECT_FALSE(
      LoadCheckpoint(testing::TempDir() + "does_not_exist_dir").ok());

  const std::string stream =
      WriteStreamFile("ckpt_geom.txt", 1200, /*timestamped=*/false, 71);
  const std::string dir = testing::TempDir() + "ckpt_geom_dir";
  fs::remove_all(dir);

  SamplerConfig config;
  config.window_n = 64;
  config.k = 4;
  config.seed = 5;
  ShardedStreamDriver::Options options;
  options.threads = 2;
  options.chunk_items = 64;
  options.partition = ShardPartition::kChunks;
  ShardedStreamDriver driver(options);

  auto shards = CreateShardedSinks(SamplerSinkSpec("bop-seq-swor", config), 2).ValueOrDie();
  {
    auto sinks = SinkPointers(shards);
    CheckpointPolicy policy;
    policy.dir = dir;
    policy.every_items = 500;
    CheckpointWriter writer(
        policy,
        MakeSinkSerializers(SamplerSinkSpec("bop-seq-swor", config), 2).ValueOrDie());
    ASSERT_TRUE(
        driver.DriveFileCheckpointed(stream, false, sinks, &writer, nullptr)
            .ok());
  }
  auto resumed = ShardedStreamDriver::ResumeFrom(dir);
  ASSERT_TRUE(resumed.ok());

  // Changed chunk size must be rejected.
  ShardedStreamDriver::Options bad_options = options;
  bad_options.chunk_items = 32;
  ShardedStreamDriver bad_driver(bad_options);
  {
    auto sinks = resumed.value().sinks;
    EXPECT_FALSE(bad_driver
                     .DriveFileCheckpointed(stream, false, sinks, nullptr,
                                            &resumed.value().position)
                     .ok());
  }
  // A sharded checkpoint cannot resume through the single-sink driver.
  StreamDriver single;
  EXPECT_FALSE(single
                   .DriveFileCheckpointed(stream, false,
                                          *resumed.value().sinks[0], nullptr,
                                          &resumed.value().position)
                   .ok());
  // Corrupt MANIFEST: flip one byte -> Status, not a crash.
  {
    const std::string manifest_path = dir + "/MANIFEST";
    auto data = [&] {
      std::FILE* f = std::fopen(manifest_path.c_str(), "rb");
      std::string d;
      char buf[4096];
      size_t got;
      while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) d.append(buf, got);
      std::fclose(f);
      return d;
    }();
    data[0] ^= 0x1;
    std::FILE* f = std::fopen(manifest_path.c_str(), "wb");
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    EXPECT_FALSE(LoadCheckpoint(dir).ok());
  }
}

TEST(DriverCheckpointTest, ResumeDetectsDivergentReplay) {
  // A resume against an input whose prefix differs from what was
  // ingested must fail (timestamp divergence check).
  const std::string stream =
      WriteStreamFile("ckpt_diverge.txt", 2000, /*timestamped=*/true, 81);
  const std::string dir = testing::TempDir() + "ckpt_diverge_dir";
  fs::remove_all(dir);

  SamplerConfig config;
  config.window_t = 40;
  config.k = 2;
  config.seed = 9;
  StreamDriver driver;

  {
    auto sink = CreateSampler("bop-ts-swr", config).ValueOrDie();
    CheckpointPolicy policy;
    policy.dir = dir;
    policy.every_items = 1000;
    CheckpointWriter writer(
        policy,
        MakeSinkSerializers(SamplerSinkSpec("bop-ts-swr", config), 1).ValueOrDie());
    ASSERT_TRUE(
        driver.DriveFileCheckpointed(stream, true, *sink, &writer, nullptr)
            .ok());
  }
  auto resumed = StreamDriver::ResumeFrom(dir);
  ASSERT_TRUE(resumed.ok());
  // Replay a DIFFERENT stream (same length, different timestamps).
  const std::string other =
      WriteStreamFile("ckpt_diverge_other.txt", 2000, true, 82);
  EXPECT_FALSE(driver
                   .DriveFileCheckpointed(other, true,
                                          *resumed.value().sinks[0], nullptr,
                                          &resumed.value().position)
                   .ok());
}

}  // namespace
}  // namespace swsample
