// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the covering decomposition (Definition 3.1, Lemma 3.4):
//  * Lemma 3.4 as a property test: incremental Incr() must produce bucket
//    boundaries structurally equal to the from-definition construction at
//    every length;
//  * size bound O(log(b - a));
//  * merge correctness: merged samples stay uniform over the merged bucket;
//  * front-dropping leaves a valid decomposition of the suffix.

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/covering_decomposition.h"
#include "stats/tests.h"
#include "util/bits.h"
#include "util/rng.h"

namespace swsample {
namespace {

Item MakeItem(uint64_t i) { return Item{i, i, static_cast<Timestamp>(i)}; }

/// From-definition reference: the bucket boundaries of zeta(a, b).
std::vector<std::pair<uint64_t, uint64_t>> ReferenceBoundaries(uint64_t a,
                                                               uint64_t b) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  while (a < b) {
    uint64_t c = a + Pow2(FloorLog2(b + 1 - a) - 1);
    out.emplace_back(a, c);
    a = c;
  }
  out.emplace_back(b, b + 1);
  return out;
}

TEST(CoveringTest, Lemma34IncrMatchesDefinition) {
  // Build incrementally from a = 0 and compare boundaries at every step.
  Rng rng(1);
  CoveringDecomposition zeta;
  zeta.InitFromItem(MakeItem(0));
  for (uint64_t b = 1; b <= 300; ++b) {
    zeta.Incr(MakeItem(b), rng);
    auto ref = ReferenceBoundaries(0, b);
    ASSERT_EQ(zeta.size(), ref.size()) << "b=" << b;
    for (uint64_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(zeta.bucket(i).x, ref[i].first) << "b=" << b << " i=" << i;
      EXPECT_EQ(zeta.bucket(i).y, ref[i].second) << "b=" << b << " i=" << i;
    }
    ASSERT_TRUE(zeta.CheckInvariants()) << "b=" << b;
  }
}

TEST(CoveringTest, Lemma34FromNonZeroOrigin) {
  Rng rng(2);
  const uint64_t a = 1000;
  CoveringDecomposition zeta;
  zeta.InitFromItem(MakeItem(a));
  for (uint64_t b = a + 1; b <= a + 200; ++b) {
    zeta.Incr(MakeItem(b), rng);
    auto ref = ReferenceBoundaries(a, b);
    ASSERT_EQ(zeta.size(), ref.size()) << "b=" << b;
    for (uint64_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(zeta.bucket(i).x, ref[i].first);
      EXPECT_EQ(zeta.bucket(i).y, ref[i].second);
    }
  }
}

TEST(CoveringTest, SizeIsLogarithmic) {
  Rng rng(3);
  CoveringDecomposition zeta;
  zeta.InitFromItem(MakeItem(0));
  uint64_t max_size = 1;
  const uint64_t len = 1 << 16;
  for (uint64_t b = 1; b < len; ++b) {
    zeta.Incr(MakeItem(b), rng);
    max_size = std::max(max_size, zeta.size());
  }
  // |zeta(a,b)| = O(log(b - a)): allow 2*log2 + 2 slack.
  EXPECT_LE(max_size, 2 * FloorLog2(len) + 2);
  EXPECT_GE(max_size, FloorLog2(len) / 2);  // and it's genuinely Theta(log)
}

TEST(CoveringTest, CoverageIsContiguous) {
  Rng rng(4);
  CoveringDecomposition zeta;
  zeta.InitFromItem(MakeItem(5));
  for (uint64_t b = 6; b < 400; ++b) {
    zeta.Incr(MakeItem(b), rng);
    EXPECT_EQ(zeta.a(), 5u);
    EXPECT_EQ(zeta.b(), b);
    EXPECT_EQ(zeta.covered_width(), b + 1 - 5);
  }
}

TEST(CoveringTest, SamplesStayInsideBuckets) {
  Rng rng(5);
  CoveringDecomposition zeta;
  zeta.InitFromItem(MakeItem(0));
  for (uint64_t b = 1; b < 2000; ++b) {
    zeta.Incr(MakeItem(b), rng);
    for (uint64_t i = 0; i < zeta.size(); ++i) {
      const BucketStructure& bs = zeta.bucket(i);
      EXPECT_GE(bs.r.index, bs.x);
      EXPECT_LT(bs.r.index, bs.y);
      EXPECT_GE(bs.q.index, bs.x);
      EXPECT_LT(bs.q.index, bs.y);
    }
  }
}

TEST(CoveringTest, BucketSamplesUniformWithinBucket) {
  // After many arrivals, the FIRST bucket has width >= 2 and its R sample
  // must be uniform over its range (merging with fair coins preserves it).
  const uint64_t len = 64;  // zeta(0,63): first bucket is [0,32)
  const int trials = 30000;
  std::vector<uint64_t> counts(32, 0);
  for (int t = 0; t < trials; ++t) {
    Rng rng(1000 + t);
    CoveringDecomposition zeta;
    zeta.InitFromItem(MakeItem(0));
    for (uint64_t b = 1; b < len; ++b) zeta.Incr(MakeItem(b), rng);
    ASSERT_EQ(zeta.bucket(0).width(), 32u);
    ++counts[zeta.bucket(0).r.index];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(CoveringTest, RAndQIndependentWithinBucket) {
  // Joint distribution of (R, Q) of the first bucket must factorize;
  // chi-square the pair distribution over an 8-wide bucket.
  const uint64_t len = 16;  // first bucket [0, 8)
  const int trials = 64000;
  std::vector<uint64_t> counts(64, 0);
  for (int t = 0; t < trials; ++t) {
    Rng rng(5000 + t);
    CoveringDecomposition zeta;
    zeta.InitFromItem(MakeItem(0));
    for (uint64_t b = 1; b < len; ++b) zeta.Incr(MakeItem(b), rng);
    ASSERT_EQ(zeta.bucket(0).width(), 8u);
    ++counts[zeta.bucket(0).r.index * 8 + zeta.bucket(0).q.index];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(CoveringTest, SampleCoveredUniformOverRange) {
  const uint64_t len = 48;
  const int trials = 30000;
  std::vector<uint64_t> counts(len, 0);
  for (int t = 0; t < trials; ++t) {
    Rng rng(9000 + t);
    CoveringDecomposition zeta;
    zeta.InitFromItem(MakeItem(0));
    for (uint64_t b = 1; b < len; ++b) zeta.Incr(MakeItem(b), rng);
    ++counts[zeta.SampleCovered(rng).index];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(CoveringTest, DropFrontLeavesValidSuffix) {
  Rng rng(6);
  CoveringDecomposition zeta;
  zeta.InitFromItem(MakeItem(0));
  for (uint64_t b = 1; b < 500; ++b) zeta.Incr(MakeItem(b), rng);
  while (zeta.size() > 1) {
    zeta.DropFront(1);
    ASSERT_TRUE(zeta.CheckInvariants());
    // Suffix still extends correctly.
  }
}

TEST(CoveringTest, IncrAfterDropFrontStillMatchesDefinition) {
  Rng rng(7);
  CoveringDecomposition zeta;
  zeta.InitFromItem(MakeItem(0));
  for (uint64_t b = 1; b < 100; ++b) zeta.Incr(MakeItem(b), rng);
  zeta.DropFront(2);
  const uint64_t suffix_a = zeta.a();
  for (uint64_t b = 100; b < 200; ++b) {
    zeta.Incr(MakeItem(b), rng);
    auto ref = ReferenceBoundaries(suffix_a, b);
    ASSERT_EQ(zeta.size(), ref.size()) << "b=" << b;
    for (uint64_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(zeta.bucket(i).x, ref[i].first);
      EXPECT_EQ(zeta.bucket(i).y, ref[i].second);
    }
  }
}

TEST(CoveringTest, PopFrontReturnsOldest) {
  Rng rng(8);
  CoveringDecomposition zeta;
  zeta.InitFromItem(MakeItem(0));
  for (uint64_t b = 1; b < 32; ++b) zeta.Incr(MakeItem(b), rng);
  const uint64_t old_a = zeta.a();
  BucketStructure bs = zeta.PopFront();
  EXPECT_EQ(bs.x, old_a);
  EXPECT_EQ(bs.y, zeta.a());
}

TEST(CoveringTest, MemoryWordsMatchesStructureCount) {
  Rng rng(9);
  CoveringDecomposition zeta;
  zeta.InitFromItem(MakeItem(0));
  for (uint64_t b = 1; b < 100; ++b) zeta.Incr(MakeItem(b), rng);
  EXPECT_EQ(zeta.MemoryWords(), zeta.size() * BucketStructure::kWords);
}


// The closed-form batch append must land on exactly the boundaries (and
// head timestamps) that run.size() repeated Incrs produce -- only the
// samples may differ (different but identically distributed coins). Every
// (prefix length, run length) pair up to 64 crosses several merge-cascade
// depths, including runs appended to a single-bucket decomposition.
TEST(CoveringTest, ExtendRunMatchesRepeatedIncrBoundaries) {
  for (uint64_t prefix : {1u, 2u, 3u, 7u, 16u, 33u}) {
    for (uint64_t len : {1u, 2u, 5u, 17u, 64u}) {
      Rng rng_a(400 + prefix * 71 + len);
      Rng rng_b(800 + prefix * 71 + len);
      CoveringDecomposition by_incr;
      CoveringDecomposition by_run;
      by_incr.InitFromItem(MakeItem(0));
      by_run.InitFromItem(MakeItem(0));
      for (uint64_t b = 1; b < prefix; ++b) {
        by_incr.Incr(MakeItem(b), rng_a);
        by_run.Incr(MakeItem(b), rng_b);
      }
      std::vector<Item> run;
      for (uint64_t b = prefix; b < prefix + len; ++b) {
        run.push_back(MakeItem(b));
      }
      for (const Item& item : run) by_incr.Incr(item, rng_a);
      by_run.ExtendRun(std::span<const Item>(run), rng_b);
      ASSERT_TRUE(by_run.CheckInvariants()) << prefix << "+" << len;
      ASSERT_EQ(by_run.size(), by_incr.size()) << prefix << "+" << len;
      for (uint64_t i = 0; i < by_run.size(); ++i) {
        EXPECT_EQ(by_run.bucket(i).x, by_incr.bucket(i).x);
        EXPECT_EQ(by_run.bucket(i).y, by_incr.bucket(i).y);
        EXPECT_EQ(by_run.first_ts(i), by_incr.first_ts(i));
      }
    }
  }
}

}  // namespace
}  // namespace swsample
