// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the estimator registry and the estimator batch path:
// (1) every registered estimator constructs by name over EVERY compatible
// sampler substrate from one common EstimatorConfig and reports itself
// under the registry key; (2) unknown names, unknown substrates,
// incompatible pairs and invalid configs are rejected through the status
// mechanism with teaching error messages; (3) estimator ObserveBatch —
// including the PayloadWindowUnit skip-ahead and the sampler fast paths
// the quantile estimator inherits — is distributionally identical to
// item-wise Observe (chi-square, mirroring registry_test.cc); (4) the
// StreamDriver pumps estimators like samplers, with reports.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "apps/estimator_registry.h"
#include "core/registry.h"
#include "stats/tests.h"
#include "stream/arrival.h"
#include "stream/driver.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"

namespace swsample {
namespace {

Item MakeItem(uint64_t i) {
  return Item{i, i, static_cast<Timestamp>(i)};
}

EstimatorConfig BasicConfig(uint64_t seed = 1) {
  EstimatorConfig config;
  config.window_n = 32;
  config.window_t = 32;
  config.r = 4;
  config.seed = seed;
  config.num_vertices = 8;
  return config;
}

TEST(EstimatorRegistryTest, SixEstimatorsRegistered) {
  EXPECT_EQ(RegisteredEstimators().size(), 6u);
}

TEST(EstimatorRegistryTest, EveryCompatiblePairConstructsAndRuns) {
  // The Theorem 5.1 grid: every estimator x every compatible substrate
  // builds from one config, ingests a stream, and answers Estimate().
  uint64_t pairs = 0;
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    EXPECT_TRUE(IsRegisteredEstimator(spec.name));
    EXPECT_TRUE(
        EstimatorSupportsSubstrate(spec.name, spec.default_substrate))
        << spec.name;
    for (const char* substrate : spec.substrates) {
      EstimatorConfig config = BasicConfig();
      config.substrate = substrate;
      // dkw-quantile requires an explicit r = 1 over single-sample
      // substrates rather than silently clamping the DKW sample size.
      if (std::string_view(spec.name) == "dkw-quantile" &&
          FindSamplerSpec(substrate)->single_sample) {
        config.r = 1;
      }
      auto created = CreateEstimator(spec.name, config);
      ASSERT_TRUE(created.ok()) << spec.name << " x " << substrate << ": "
                                << created.status().ToString();
      auto est = std::move(created).ValueOrDie();
      EXPECT_STREQ(est->name(), spec.name);
      for (uint64_t i = 0; i < 100; ++i) est->Observe(MakeItem(i));
      EstimateReport report = est->Estimate();
      EXPECT_FALSE(report.metric.empty()) << spec.name;
      EXPECT_GT(est->MemoryWords(), 0u) << spec.name << " x " << substrate;
      ++pairs;
    }
  }
  // 3 payload estimators x 6 + quantile x 12 + biased x 6 + count x 12.
  EXPECT_EQ(pairs, 3u * 6 + 12 + 6 + 12);
}

TEST(EstimatorRegistryTest, DefaultSubstrateUsedWhenEmpty) {
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    EstimatorConfig config = BasicConfig();
    config.substrate.clear();
    auto created = CreateEstimator(spec.name, config);
    ASSERT_TRUE(created.ok()) << spec.name << ": "
                              << created.status().ToString();
  }
}

TEST(EstimatorRegistryTest, UnknownEstimatorRejected) {
  auto created = CreateEstimator("no-such-estimator", BasicConfig());
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
  // The error should teach the caller the registered names.
  EXPECT_NE(created.status().message().find("ams-fk"), std::string::npos);
}

TEST(EstimatorRegistryTest, UnknownSubstrateRejected) {
  EstimatorConfig config = BasicConfig();
  config.substrate = "no-such-sampler";
  auto created = CreateEstimator("ams-fk", config);
  ASSERT_FALSE(created.ok());
  EXPECT_NE(created.status().message().find("bop-seq-swr"),
            std::string::npos);
}

TEST(EstimatorRegistryTest, IncompatibleSubstrateRejected) {
  // bdm-priority cannot carry forward payloads; the error must list the
  // compatible substrates.
  EstimatorConfig config = BasicConfig();
  config.substrate = "bdm-priority";
  auto created = CreateEstimator("ams-fk", config);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(created.status().message().find("bop-seq-single"),
            std::string::npos);
  EXPECT_FALSE(EstimatorSupportsSubstrate("ams-fk", "bdm-priority"));
  // biased-mean is sequence-only.
  EXPECT_FALSE(EstimatorSupportsSubstrate("biased-mean", "bop-ts-swr"));
}

TEST(EstimatorRegistryTest, MissingWindowParameterRejected) {
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    for (const char* substrate : spec.substrates) {
      EstimatorConfig config = BasicConfig();
      config.substrate = substrate;
      if (FindSamplerSpec(substrate)->model == WindowModel::kSequence) {
        config.window_n = 0;
      } else {
        config.window_t = 0;
      }
      auto created = CreateEstimator(spec.name, config);
      EXPECT_FALSE(created.ok()) << spec.name << " x " << substrate;
      EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument)
          << spec.name << " x " << substrate;
    }
  }
}

TEST(EstimatorRegistryTest, InvalidParametersRejected) {
  EstimatorConfig config = BasicConfig();
  config.r = 0;
  EXPECT_FALSE(CreateEstimator("ams-fk", config).ok());
  config = BasicConfig();
  config.q = 1.5;
  EXPECT_FALSE(CreateEstimator("dkw-quantile", config).ok());
  config = BasicConfig();
  config.num_vertices = 2;
  EXPECT_FALSE(CreateEstimator("buriol-triangles", config).ok());
  // Substrate's own factory validation propagates: SWOR needs k <= n.
  config = BasicConfig();
  config.window_n = 4;
  config.r = 5;
  EXPECT_FALSE(CreateEstimator("dkw-quantile", config).ok());
  // Single-sample substrates cannot honor a DKW sample size r > 1; the
  // registry refuses rather than silently degrading the guarantee.
  config = BasicConfig();
  config.substrate = "bop-seq-single";
  auto clamped = CreateEstimator("dkw-quantile", config);
  ASSERT_FALSE(clamped.ok());
  EXPECT_NE(clamped.status().message().find("config.r = 1"),
            std::string::npos);
}

// --- ObserveBatch vs Observe equivalence -------------------------------

// Feeds `stream_len` items through a fresh quantile estimator per trial
// (value = index, r = 1, so the estimate IS the substrate's sampled
// position), batched or item-wise, and returns per-position counts.
std::vector<uint64_t> QuantilePositionCounts(uint64_t n, uint64_t stream_len,
                                             uint64_t batch, int trials,
                                             uint64_t seed) {
  std::vector<uint64_t> counts(n, 0);
  std::vector<Item> items;
  items.reserve(stream_len);
  for (uint64_t i = 0; i < stream_len; ++i) items.push_back(MakeItem(i));
  for (int t = 0; t < trials; ++t) {
    EstimatorConfig config;
    config.substrate = "bop-seq-swr";
    config.window_n = n;
    config.r = 1;
    config.seed = Rng::ForkSeed(seed, t);
    auto est = CreateEstimator("dkw-quantile", config).ValueOrDie();
    if (batch == 0) {
      for (const Item& item : items) est->Observe(item);
    } else {
      for (uint64_t pos = 0; pos < stream_len; pos += batch) {
        const uint64_t take = std::min(batch, stream_len - pos);
        est->ObserveBatch(
            std::span<const Item>(items.data() + pos, take));
      }
    }
    const uint64_t sampled =
        static_cast<uint64_t>(est->Estimate().value);
    EXPECT_GE(sampled, stream_len - n) << "trial " << t;
    if (sampled >= stream_len - n) ++counts[sampled - (stream_len - n)];
  }
  return counts;
}

// Same for ams-fk over the bop-seq-single substrate on a constant-value
// stream: the F2 estimate is n * (2c - 1) with c = forward count of the
// sampled position, so the estimate identifies the position and the
// PayloadWindowUnit skip-ahead path is tested distributionally.
std::vector<uint64_t> FkPositionCounts(uint64_t n, uint64_t stream_len,
                                       uint64_t batch, int trials,
                                       uint64_t seed) {
  std::vector<uint64_t> counts(n, 0);
  std::vector<Item> items;
  items.reserve(stream_len);
  for (uint64_t i = 0; i < stream_len; ++i) {
    items.push_back(Item{7, i, static_cast<Timestamp>(i)});  // constant
  }
  for (int t = 0; t < trials; ++t) {
    EstimatorConfig config;
    config.substrate = "bop-seq-single";
    config.window_n = n;
    config.r = 1;
    config.seed = Rng::ForkSeed(seed, t);
    auto est = CreateEstimator("ams-fk", config).ValueOrDie();
    if (batch == 0) {
      for (const Item& item : items) est->Observe(item);
    } else {
      for (uint64_t pos = 0; pos < stream_len; pos += batch) {
        const uint64_t take = std::min(batch, stream_len - pos);
        est->ObserveBatch(
            std::span<const Item>(items.data() + pos, take));
      }
    }
    // estimate = n (2c - 1), c in [1, n]; recover c, then the position:
    // c counts occurrences at/after the sampled position within the
    // window, and on a constant stream c = n - position_in_window.
    const double estimate = est->Estimate().value;
    const uint64_t c = static_cast<uint64_t>(
        (estimate / static_cast<double>(n) + 1.0) / 2.0 + 0.5);
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, n);
    if (c >= 1 && c <= n) ++counts[n - c];
  }
  return counts;
}

// The batched paths must stay uniform over the window, at a stream length
// that straddles bucket boundaries, with a ragged batch size.
TEST(EstimatorBatchTest, BatchedQuantileUniform) {
  const uint64_t n = 24;
  auto counts = QuantilePositionCounts(n, 3 * n + 7, /*batch=*/17,
                                       /*trials=*/30000, /*seed=*/1000);
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(EstimatorBatchTest, BatchedFkUniform) {
  const uint64_t n = 24;
  auto counts = FkPositionCounts(n, 3 * n + 7, /*batch=*/17,
                                 /*trials=*/30000, /*seed=*/2000);
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

// Timestamp-substrate counterpart: the flat-map candidate payloads and
// the batch-scoped merge-coin cache (TsSingleSampler::ObserveBatch) must
// leave the sampled-position distribution untouched. Constant stream with
// ts = index, window t0 = n: the forward count identifies the position.
std::vector<uint64_t> TsFkPositionCounts(uint64_t n, uint64_t stream_len,
                                         uint64_t batch, int trials,
                                         uint64_t seed) {
  std::vector<uint64_t> counts(n, 0);
  std::vector<Item> items;
  items.reserve(stream_len);
  for (uint64_t i = 0; i < stream_len; ++i) {
    items.push_back(Item{7, i, static_cast<Timestamp>(i)});  // constant
  }
  for (int t = 0; t < trials; ++t) {
    EstimatorConfig config;
    config.substrate = "bop-ts-single";
    config.window_t = static_cast<Timestamp>(n);
    config.r = 1;
    // Tight DGIM eps: at this window size n-hat is exact, so the position
    // recovery below cannot collide adjacent cells.
    config.count_eps = 0.001;
    config.seed = Rng::ForkSeed(seed, t);
    auto est = CreateEstimator("ams-fk", config).ValueOrDie();
    if (batch == 0) {
      for (const Item& item : items) est->Observe(item);
    } else {
      for (uint64_t pos = 0; pos < stream_len; pos += batch) {
        const uint64_t take = std::min(batch, stream_len - pos);
        est->ObserveBatch(
            std::span<const Item>(items.data() + pos, take));
      }
    }
    // With ts = index and t0 = n the active window is the last n arrivals.
    // estimate = n_hat (2c - 1): n_hat may carry the DGIM eps, but c is
    // recoverable because estimate / (2c - 1) must be within eps of n —
    // pick the c in [1, n] minimizing the relative mismatch.
    const double estimate = est->Estimate().value;
    uint64_t best_c = 0;
    double best_err = 1e18;
    for (uint64_t c = 1; c <= n; ++c) {
      const double n_hat = estimate / static_cast<double>(2 * c - 1);
      const double err =
          std::fabs(n_hat - static_cast<double>(n)) / static_cast<double>(n);
      if (err < best_err) {
        best_err = err;
        best_c = c;
      }
    }
    EXPECT_LT(best_err, 0.2);
    ++counts[n - best_c];
  }
  return counts;
}

TEST(EstimatorBatchTest, TsBatchedFkUniform) {
  const uint64_t n = 16;
  auto counts = TsFkPositionCounts(n, 3 * n + 5, /*batch=*/13,
                                   /*trials=*/20000, /*seed=*/3000);
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(EstimatorBatchTest, TsBatchMatchesObserveDistributionally) {
  const uint64_t n = 16;
  const uint64_t stream_len = 3 * n + 5;
  const int trials = 20000;
  auto batched =
      TsFkPositionCounts(n, stream_len, /*batch=*/13, trials, 7100);
  auto unbatched =
      TsFkPositionCounts(n, stream_len, /*batch=*/0, trials, 9100);
  double stat = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    const double a = static_cast<double>(batched[i]);
    const double b = static_cast<double>(unbatched[i]);
    if (a + b == 0) continue;
    stat += (a - b) * (a - b) / (a + b);
  }
  // df = n - 1 = 15; the 1e-4 quantile of chi^2_15 is ~44.3.
  EXPECT_LT(stat, 44.3);
}

// Batched and unbatched ingestion must agree with each other cell by cell
// (two-sample chi-square at equal trial counts, as in registry_test.cc).
TEST(EstimatorBatchTest, BatchMatchesObserveDistributionally) {
  const uint64_t n = 16;
  const uint64_t stream_len = 2 * n + 5;
  const int trials = 30000;
  struct Case {
    const char* label;
    std::vector<uint64_t> batched, unbatched;
  };
  Case cases[] = {
      {"dkw-quantile",
       QuantilePositionCounts(n, stream_len, /*batch=*/13, trials, 7000),
       QuantilePositionCounts(n, stream_len, /*batch=*/0, trials, 9000)},
      {"ams-fk",
       FkPositionCounts(n, stream_len, /*batch=*/13, trials, 7500),
       FkPositionCounts(n, stream_len, /*batch=*/0, trials, 9500)},
  };
  for (const Case& c : cases) {
    double stat = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      const double a = static_cast<double>(c.batched[i]);
      const double b = static_cast<double>(c.unbatched[i]);
      if (a + b == 0) continue;
      stat += (a - b) * (a - b) / (a + b);
    }
    // df = n - 1 = 15; the 1e-4 quantile of chi^2_15 is ~44.3.
    EXPECT_LT(stat, 44.3) << c.label;
  }
}

// --- StreamDriver pumps estimators -------------------------------------

TEST(EstimatorDriverTest, DriverPumpsEveryEstimator) {
  std::vector<Item> items;
  for (uint64_t i = 0; i < 1000; ++i) items.push_back(MakeItem(i));
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    auto est = CreateEstimator(spec.name, BasicConfig(5)).ValueOrDie();
    StreamDriver::Options options;
    options.batch_size = 64;
    DriveReport report =
        StreamDriver(options).Drive(std::span<const Item>(items), *est);
    EXPECT_EQ(report.items, 1000u) << spec.name;
    EXPECT_EQ(report.batches, (1000u + 63) / 64) << spec.name;
    EXPECT_EQ(report.memory_words, est->MemoryWords()) << spec.name;
    EXPECT_GE(report.peak_memory_words, report.memory_words) << spec.name;
  }
}

TEST(EstimatorDriverTest, SyntheticStreamAdvancesEstimatorClock) {
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 10).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(0.2)).ValueOrDie(), 42);
  EstimatorConfig config;
  config.substrate = "bop-ts-single";
  config.window_t = 10;
  config.r = 2;
  config.seed = 3;
  auto est = CreateEstimator("window-count", config).ValueOrDie();
  StreamDriver::Options options;
  options.batch_size = 32;
  DriveReport report =
      StreamDriver(options).DriveSynthetic(stream, 2000, *est);
  EXPECT_GT(report.items, 0u);
  EXPECT_GT(report.empty_steps, 0u);
  // After the drive the DGIM count must reflect only the last 10 ticks —
  // a loose sanity band around the Poisson(0.2)/tick rate.
  EXPECT_LT(est->Estimate().value, 40.0);
}

}  // namespace
}  // namespace swsample
