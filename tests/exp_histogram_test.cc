// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the DGIM exponential histogram: the (1 +/- eps) window-count
// guarantee under constant-rate and bursty arrivals, logarithmic bucket
// growth, and expiry across silence.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>

#include <gtest/gtest.h>

#include "stream/arrival.h"
#include "stream/exp_histogram.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"
#include "util/bits.h"
#include "util/rng.h"

namespace swsample {
namespace {

TEST(ExpHistogramTest, CreateValidation) {
  EXPECT_FALSE(ExpHistogram::Create(0, 0.1).ok());
  EXPECT_FALSE(ExpHistogram::Create(10, 0.0).ok());
  EXPECT_FALSE(ExpHistogram::Create(10, 1.5).ok());
  EXPECT_TRUE(ExpHistogram::Create(10, 1.0).ok());
}

TEST(ExpHistogramTest, ExactForTinyCounts) {
  auto h = ExpHistogram::Create(100, 0.1).ValueOrDie();
  EXPECT_EQ(h.Estimate(), 0u);
  h.Add(0);
  EXPECT_EQ(h.Estimate(), 1u);
  h.Add(1);
  h.Add(2);
  EXPECT_EQ(h.Estimate(), 3u);
}

TEST(ExpHistogramTest, AllExpire) {
  auto h = ExpHistogram::Create(5, 0.2).ValueOrDie();
  for (Timestamp t = 0; t < 20; ++t) h.Add(t);
  EXPECT_GT(h.Estimate(), 0u);
  h.AdvanceTime(100);
  EXPECT_EQ(h.Estimate(), 0u);
  EXPECT_EQ(h.BucketCount(), 0u);
}

void CheckRelativeError(double eps, double lambda, Timestamp t0,
                        uint64_t seed) {
  auto h = ExpHistogram::Create(t0, eps).ValueOrDie();
  auto stream = SyntheticStream(
      UniformValues::Create(16).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(lambda)).ValueOrDie(), seed);
  std::deque<Timestamp> exact;  // timestamps of active arrivals
  for (Timestamp t = 0; t < 6 * t0; ++t) {
    for (const Item& item : stream.Step()) {
      h.Add(item.timestamp);
      exact.push_back(item.timestamp);
    }
    h.AdvanceTime(t);
    while (!exact.empty() && t - exact.front() >= t0) exact.pop_front();
    const double truth = static_cast<double>(exact.size());
    const double got = static_cast<double>(h.Estimate());
    if (truth >= 8) {
      EXPECT_LE(std::fabs(got - truth), eps * truth + 1.0)
          << "t=" << t << " truth=" << truth << " got=" << got;
    }
  }
}

TEST(ExpHistogramTest, RelativeErrorEps20) {
  CheckRelativeError(0.2, 4.0, 200, 1);
}
TEST(ExpHistogramTest, RelativeErrorEps10) {
  CheckRelativeError(0.1, 8.0, 300, 2);
}
TEST(ExpHistogramTest, RelativeErrorEps5Bursty) {
  CheckRelativeError(0.05, 20.0, 150, 3);
}

TEST(ExpHistogramTest, BucketCountLogarithmic) {
  auto h = ExpHistogram::Create(1 << 16, 0.1).ValueOrDie();
  for (Timestamp t = 0; t < (1 << 16); ++t) h.Add(t);
  // O(eps^-1 log n): k/2+2 = 7 per size class, ~17 classes.
  EXPECT_LE(h.BucketCount(), 7u * 18u);
  EXPECT_GE(h.BucketCount(), 17u);
}

TEST(ExpHistogramTest, MemoryWordsTracksBuckets) {
  auto h = ExpHistogram::Create(1000, 0.25).ValueOrDie();
  for (Timestamp t = 0; t < 500; ++t) h.Add(t);
  EXPECT_EQ(h.MemoryWords(), 3 + h.BucketCount() * 2);
}

TEST(ExpHistogramTest, BurstAtOneTimestamp) {
  auto h = ExpHistogram::Create(10, 0.1).ValueOrDie();
  for (int i = 0; i < 10000; ++i) h.Add(50);
  const double got = static_cast<double>(h.Estimate());
  EXPECT_NEAR(got, 10000.0, 0.1 * 10000.0);
  h.AdvanceTime(59);
  EXPECT_GT(h.Estimate(), 0u);
  h.AdvanceTime(60);
  EXPECT_EQ(h.Estimate(), 0u);
}

// Long steady-state run: the ring-backed bucket list cycles through many
// evict/append/merge rounds (head wraps repeatedly) and the estimate must
// honor the eps bound in every window position, not just the first fill.
TEST(ExpHistogramTest, SteadyStateCyclingHonorsEps) {
  const Timestamp t0 = 512;
  const double eps = 0.1;
  auto h = ExpHistogram::Create(t0, eps).ValueOrDie();
  uint64_t arrivals = 0;
  Rng rng(2024);
  std::deque<Timestamp> window;  // reference arrival times
  for (Timestamp t = 0; t < 20 * t0; ++t) {
    const uint64_t burst = rng.UniformIndex(3);
    for (uint64_t b = 0; b < burst; ++b) {
      h.Add(t);
      window.push_back(t);
      ++arrivals;
    }
    h.AdvanceTime(t);
    while (!window.empty() && t - window.front() >= t0) window.pop_front();
    const double exact = static_cast<double>(window.size());
    const double estimate = static_cast<double>(h.Estimate());
    if (exact >= 8) {
      EXPECT_LE(std::fabs(estimate - exact), eps * exact + 1.0)
          << "t=" << t << " exact=" << exact << " got=" << estimate;
    }
  }
  ASSERT_GT(arrivals, t0);
}

}  // namespace
}  // namespace swsample
