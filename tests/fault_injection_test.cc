// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Deterministic fault-injection coverage for the FileOps seam
// (util/file_ops.h), the failpoint registry (util/failpoint.h), and the
// robustness machinery built on them:
//
//   (1) failpoint grammar + trigger semantics (nth/every/prob/times) and
//       deterministic prob decisions under a fixed seed;
//   (2) Status retryability split and the seeded RetryIo/backoff driver;
//   (3) AtomicWriteFile fault classes: transient errors leak no temp
//       file, torn writes silently publish a truncated prefix;
//   (4) the full site x class fault matrix under a Zipf keyed workload
//       and the checkpoint writer — no crashes, shed mode holds the
//       budget after every item;
//   (5) transient faults that retrying absorbs leave results
//       bit-identical to a fault-free run with zero give-ups;
//   (6) torn/corrupt spill files are quarantined (renamed aside) at
//       restore and at directory adoption, and untouched keys restore
//       cleanly — quarantine-then-resume equivalence;
//   (7) the degraded -> recovering -> healthy re-probe state machine;
//   (8) crash-orphaned *.tmp files are swept at engine creation and by
//       the checkpoint GC.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/sink_spec.h"
#include "stream/checkpoint.h"
#include "stream/driver.h"
#include "stream/keyed_engine.h"
#include "stream/value_gen.h"
#include "util/failpoint.h"
#include "util/file_ops.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = (fs::path(::testing::TempDir()) / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Every test body runs with a clean registry on both sides: failpoints
/// are process-global, so a leaked arming would poison later tests.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmFailpoints(); }
  void TearDown() override { DisarmFailpoints(); }
};

constexpr const char* kClasses[] = {"enospc", "eio", "torn", "fsync",
                                    "rename"};

// ---------------------------------------------------------------------------
// Failpoint registry + grammar

TEST_F(FaultInjectionTest, SpecGrammarRejectsMalformedSpecs) {
  EXPECT_FALSE(ArmFailpoints("nosite", 1).ok());
  EXPECT_FALSE(ArmFailpoints("=eio", 1).ok());
  EXPECT_FALSE(ArmFailpoints("a.site=badclass", 1).ok());
  EXPECT_FALSE(ArmFailpoints("a.site=eio,nth=0", 1).ok());
  EXPECT_FALSE(ArmFailpoints("a.site=eio,nth=x", 1).ok());
  EXPECT_FALSE(ArmFailpoints("a.site=eio,prob=1.5", 1).ok());
  EXPECT_FALSE(ArmFailpoints("a.site=eio,bogus=1", 1).ok());
  EXPECT_FALSE(ArmFailpoints("a.site=", 1).ok());
  EXPECT_TRUE(ArmFailpoints("", 1).ok());  // empty spec arms nothing
  EXPECT_FALSE(AnyFailpointArmed());
}

TEST_F(FaultInjectionTest, TriggerSemanticsNthEveryTimes) {
  ASSERT_TRUE(ArmFailpoints("t.nth=eio,nth=3", 1).ok());
  Failpoint& nth = Failpoint::At("t.nth");
  EXPECT_EQ(nth.Hit(), FaultClass::kNone);
  EXPECT_EQ(nth.Hit(), FaultClass::kNone);
  EXPECT_EQ(nth.Hit(), FaultClass::kEio);  // exactly the 3rd
  EXPECT_EQ(nth.Hit(), FaultClass::kNone);

  ASSERT_TRUE(ArmFailpoints("t.every=enospc,every=2", 1).ok());
  Failpoint& every = Failpoint::At("t.every");
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (every.Hit() != FaultClass::kNone) ++fires;
  }
  EXPECT_EQ(fires, 5);

  ASSERT_TRUE(ArmFailpoints("t.times=rename,times=2", 1).ok());
  Failpoint& times = Failpoint::At("t.times");
  fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (times.Hit() != FaultClass::kNone) ++fires;
  }
  EXPECT_EQ(fires, 2);  // kAlways capped by times=
  EXPECT_EQ(times.hits(), 10u);
  EXPECT_EQ(times.fires(), 2u);
}

TEST_F(FaultInjectionTest, ProbTriggerIsDeterministicInTheSeed) {
  auto pattern = [](uint64_t seed) {
    EXPECT_TRUE(ArmFailpoints("t.prob=eio,prob=0.3", seed).ok());
    Failpoint& fp = Failpoint::At("t.prob");
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(fp.Hit() != FaultClass::kNone);
    }
    return fired;
  };
  const auto a = pattern(42);
  const auto b = pattern(42);
  const auto c = pattern(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 200 * 0.3 / 2);
  EXPECT_LT(fires, 200 * 0.3 * 2);
}

TEST_F(FaultInjectionTest, UnarmedSitesReportNoneAndReportListsArmed) {
  EXPECT_EQ(Failpoint::At("t.unarmed").Hit(), FaultClass::kNone);
  ASSERT_TRUE(ArmFailpoints("t.report=torn", 1).ok());
  Failpoint::At("t.report").Hit();
  const std::string report = FailpointReport();
  EXPECT_NE(report.find("t.report class=torn hits=1 fires=1"),
            std::string::npos);
  DisarmFailpoints();
  EXPECT_FALSE(AnyFailpointArmed());
  EXPECT_EQ(Failpoint::At("t.report").Hit(), FaultClass::kNone);
}

// ---------------------------------------------------------------------------
// Status + retry driver

TEST_F(FaultInjectionTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(Status::Unavailable("x").retryable());
  EXPECT_FALSE(Status::Ok().retryable());
  EXPECT_FALSE(Status::InvalidArgument("x").retryable());
}

TEST_F(FaultInjectionTest, RetryBackoffIsDeterministicBoundedAndSeeded) {
  RetryPolicy policy;
  policy.backoff_ms = 1.0;
  policy.backoff_max_ms = 4.0;
  for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
    const double a = RetryBackoffSeconds(policy, 7, attempt);
    const double b = RetryBackoffSeconds(policy, 7, attempt);
    EXPECT_EQ(a, b);
    // Jitter keeps each sleep within [base/2, base), base capped at max.
    EXPECT_GE(a, 0.5e-3);
    EXPECT_LT(a, 4e-3);
  }
  EXPECT_NE(RetryBackoffSeconds(policy, 7, 1),
            RetryBackoffSeconds(policy, 8, 1));
}

TEST_F(FaultInjectionTest, RetryIoRetriesTransientAndStopsOnPermanent) {
  RetryPolicy fast;
  fast.max_attempts = 4;
  fast.backoff_ms = 0.0;
  uint64_t retries = 0;
  int calls = 0;
  Status s = RetryIo(fast, 1, &retries, [&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("flaky") : Status::Ok();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);

  calls = 0;
  retries = 0;
  s = RetryIo(fast, 1, &retries, [&] {
    ++calls;
    return Status::InvalidArgument("permanent");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 1);  // permanent errors are not retried
  EXPECT_EQ(retries, 0u);

  calls = 0;
  s = RetryIo(fast, 1, nullptr, [&] {
    ++calls;
    return Status::Unavailable("always down");
  });
  EXPECT_TRUE(s.retryable());
  EXPECT_EQ(calls, 4);  // budget exhausted
}

// ---------------------------------------------------------------------------
// AtomicWriteFile fault classes

TEST_F(FaultInjectionTest, TransientWriteFaultsLeakNoTempFile) {
  const std::string dir = FreshDir("fi_awf");
  for (const char* klass : {"enospc", "eio", "fsync", "rename"}) {
    ASSERT_TRUE(
        ArmFailpoints(std::string("t.awf=") + klass + ",nth=1", 1).ok());
    const std::string path = dir + "/" + klass + ".bin";
    Status s = AtomicWriteFile("t.awf", path, "payload-bytes", true);
    EXPECT_TRUE(s.retryable()) << klass << ": " << s.ToString();
    EXPECT_FALSE(fs::exists(path)) << klass;
    EXPECT_FALSE(fs::exists(path + ".tmp")) << klass << " leaked its temp";
    // The failpoint has fired its nth=1; the retry goes through clean.
    s = AtomicWriteFile("t.awf", path, "payload-bytes", true);
    EXPECT_TRUE(s.ok()) << klass << ": " << s.ToString();
    EXPECT_EQ(ReadFileBytes("t.none", path).ValueOrDie(), "payload-bytes");
  }
}

TEST_F(FaultInjectionTest, TornWriteSilentlyPublishesATruncatedPrefix) {
  const std::string dir = FreshDir("fi_torn");
  ASSERT_TRUE(ArmFailpoints("t.torn=torn,nth=1", 1).ok());
  const std::string path = dir + "/file.bin";
  // Reports success — the caller believes the write committed, exactly
  // like a crash between write and rename.
  ASSERT_TRUE(AtomicWriteFile("t.torn", path, "0123456789", true).ok());
  EXPECT_EQ(ReadFileBytes("t.none", path).ValueOrDie(), "01234");
}

TEST_F(FaultInjectionTest, SweepTempFilesRemovesOnlyCrashOrphans) {
  const std::string dir = FreshDir("fi_sweep");
  std::ofstream(dir + "/a.ckpt.tmp") << "orphan";
  std::ofstream(dir + "/b.tmp") << "orphan";
  std::ofstream(dir + "/keep.ckpt") << "committed";
  EXPECT_EQ(SweepTempFiles(dir), 2u);
  EXPECT_TRUE(fs::exists(dir + "/keep.ckpt"));
  EXPECT_FALSE(fs::exists(dir + "/b.tmp"));
  EXPECT_EQ(SweepTempFiles(dir + "/missing"), 0u);
}

// ---------------------------------------------------------------------------
// Keyed engine drills

KeyedEngineOptions ShedOptions(const std::string& dir) {
  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-seq-single,n=16,seed=9").ValueOrDie();
  options.memory_budget_bytes = 96 * 1024;
  options.spill_dir = dir;
  options.fsync_spills = false;
  options.degrade = KeyedDegradeMode::kShed;
  options.io_retry.backoff_ms = 0.0;
  return options;
}

/// Zipf arrivals: the skewed, evict/restore-heavy traffic shape the
/// adversarial workloads of the stress matrix use.
void DriveZipf(KeyedWindowEngine& engine, uint64_t items, uint64_t domain,
               uint64_t seed, uint64_t budget_or_zero) {
  auto zipf = ZipfValues::Create(domain, 1.2).ValueOrDie();
  Rng rng(seed);
  for (uint64_t i = 0; i < items; ++i) {
    engine.Observe(Item{zipf->Next(rng), i, static_cast<Timestamp>(i)});
    if (budget_or_zero != 0) {
      ASSERT_LE(engine.ChargedBytes(), budget_or_zero) << "item " << i;
    }
  }
}

TEST_F(FaultInjectionTest, FaultMatrixSpillSitesNeverCrashAndShedHoldsBudget) {
  for (const char* site : {"spill.write", "spill.read"}) {
    for (const char* klass : kClasses) {
      const std::string dir =
          FreshDir(std::string("fi_matrix_") + site + "_" + klass);
      DisarmFailpoints();
      ASSERT_TRUE(
          ArmFailpoints(std::string(site) + "=" + klass + ",every=5", 99)
              .ok());
      {
        KeyedEngineOptions options = ShedOptions(dir);
        auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
        // Budget must hold after EVERY item, outage or not.
        DriveZipf(*engine, 20000, 4000, 7,
                  options.memory_budget_bytes);
        // Shed mode never latches: the run finishes with Ok status no
        // matter what the storage did.
        EXPECT_TRUE(engine->status().ok())
            << site << "=" << klass << ": " << engine->status().ToString();
        // Queries during the outage must not crash either.
        for (uint64_t key = 0; key < 64; ++key) {
          auto sample = engine->SampleKey(key);
          (void)sample;
        }
      }
      // A fresh engine must adopt whatever the faulted run left behind
      // (quarantining torn files) and keep serving.
      DisarmFailpoints();
      auto adopted = KeyedWindowEngine::Create(ShedOptions(dir));
      ASSERT_TRUE(adopted.ok()) << site << "=" << klass;
      auto adopted_engine = std::move(adopted).ValueOrDie();
      DriveZipf(*adopted_engine, 2000, 4000, 8, 0);
      EXPECT_TRUE(adopted_engine->status().ok());
    }
  }
}

TEST_F(FaultInjectionTest, RetriedTransientFaultsAreBitIdenticalToCleanRun) {
  constexpr uint64_t kItems = 40000;
  constexpr uint64_t kDomain = 3000;
  auto run = [&](const std::string& dir) {
    KeyedEngineOptions options = ShedOptions(dir);
    // 8 attempts make a prob=0.05 give-up a ~4e-11 event per op: the run
    // must absorb every fault by retrying.
    options.io_retry.max_attempts = 8;
    auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
    DriveZipf(*engine, kItems, kDomain, 21, options.memory_budget_bytes);
    std::map<uint64_t, std::vector<Item>> samples;
    for (uint64_t key = 0; key < kDomain; key += 17) {
      auto sample = engine->SampleKey(key);
      if (sample.ok()) samples[key] = std::move(sample).ValueOrDie();
    }
    EXPECT_TRUE(engine->status().ok()) << engine->status().ToString();
    return std::make_pair(std::move(samples), engine->stats());
  };

  const auto clean = run(FreshDir("fi_equiv_clean"));
  ASSERT_TRUE(
      ArmFailpoints("spill.write=eio,prob=0.05;spill.read=eio,prob=0.05", 5)
          .ok());
  const auto faulted = run(FreshDir("fi_equiv_faulted"));

  EXPECT_GT(faulted.second.io_retries, 0u);  // faults actually fired
  EXPECT_EQ(faulted.second.io_giveups, 0u);  // and retrying absorbed all
  EXPECT_EQ(faulted.second.degraded_drops, 0u);
  EXPECT_EQ(faulted.second.restore_misses, 0u);
  EXPECT_EQ(faulted.second.health, KeyedEngineHealth::kHealthy);
  // The engine's evolution — evictions, restores, and every surviving
  // per-key sample — is bit-identical to the fault-free run.
  EXPECT_EQ(faulted.second.evictions, clean.second.evictions);
  EXPECT_EQ(faulted.second.restores, clean.second.restores);
  EXPECT_EQ(faulted.second.charged_bytes, clean.second.charged_bytes);
  ASSERT_EQ(faulted.first.size(), clean.first.size());
  for (const auto& [key, sample] : clean.first) {
    const auto it = faulted.first.find(key);
    ASSERT_NE(it, faulted.first.end()) << "key " << key;
    ASSERT_EQ(it->second.size(), sample.size()) << "key " << key;
    for (size_t i = 0; i < sample.size(); ++i) {
      EXPECT_EQ(it->second[i].value, sample[i].value) << "key " << key;
    }
  }
}

TEST_F(FaultInjectionTest, TornSpillIsQuarantinedAndTheKeyRestartsFresh) {
  const std::string dir = FreshDir("fi_quarantine");
  KeyedEngineOptions options = ShedOptions(dir);
  options.degrade = KeyedDegradeMode::kBlock;  // quarantine never latches
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
  for (uint64_t key = 0; key < 4; ++key) {
    for (uint64_t i = 0; i < 8; ++i) {
      engine->Observe(
          Item{key, key * 8 + i, static_cast<Timestamp>(key * 8 + i)});
    }
  }
  // Key 0 spills torn — the engine believes the spill committed.
  ASSERT_TRUE(ArmFailpoints("spill.write=torn,nth=1", 1).ok());
  ASSERT_TRUE(engine->EvictKey(0).ok());
  ASSERT_TRUE(engine->EvictKey(1).ok());  // clean spill
  DisarmFailpoints();

  // Restoring key 0 finds the truncated file: quarantined, not fatal.
  EXPECT_FALSE(engine->SampleKey(0).ok());
  EXPECT_TRUE(engine->status().ok()) << engine->status().ToString();
  EXPECT_EQ(engine->stats().quarantined_files, 1u);
  EXPECT_EQ(engine->stats().restore_misses, 1u);
  bool saw_bad = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".bad") == 0) {
      saw_bad = true;
    }
  }
  EXPECT_TRUE(saw_bad) << "torn spill was not renamed aside";
  // The untouched key restores bit-exact, and the quarantined key
  // restarts fresh on its next arrival.
  EXPECT_TRUE(engine->SampleKey(1).ok());
  engine->Observe(Item{0, 100, 100});
  EXPECT_TRUE(engine->HasKey(0));
  EXPECT_TRUE(engine->status().ok());
}

TEST_F(FaultInjectionTest, AdoptionFuzzQuarantinesCorruptSpillsOnly) {
  const std::string dir = FreshDir("fi_adopt_fuzz");
  constexpr uint64_t kKeys = 24;
  {
    KeyedEngineOptions options = ShedOptions(dir);
    auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
    for (uint64_t key = 0; key < kKeys; ++key) {
      for (uint64_t i = 0; i < 6; ++i) {
        engine->Observe(
            Item{key, key * 6 + i, static_cast<Timestamp>(key * 6 + i)});
      }
    }
    for (uint64_t key = 0; key < kKeys; ++key) {
      ASSERT_TRUE(engine->EvictKey(key).ok());
    }
  }  // engine gone; only the spill directory survives the "crash"

  // Corrupt a deterministic third of the files: truncate some, scramble
  // the magic of others.
  Rng rng(123);
  std::vector<std::string> corrupted;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string path = entry.path().string();
    const uint64_t roll = rng.NextU64() % 3;
    if (roll == 0) continue;  // leave intact
    corrupted.push_back(path);
    std::string bytes = ReadFileBytes("t.none", path).ValueOrDie();
    if (roll == 1) {
      bytes.resize(rng.NextU64() % bytes.size());  // torn prefix
    } else {
      bytes[0] ^= 0xff;  // bad magic
    }
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  }
  ASSERT_FALSE(corrupted.empty());

  KeyedEngineOptions options = ShedOptions(dir);
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
  uint64_t restored = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    if (engine->SampleKey(key).ok()) ++restored;
  }
  EXPECT_TRUE(engine->status().ok()) << engine->status().ToString();
  EXPECT_EQ(engine->stats().quarantined_files, corrupted.size());
  EXPECT_EQ(restored, kKeys - corrupted.size());
  EXPECT_EQ(engine->stats().restore_misses, corrupted.size());
}

TEST_F(FaultInjectionTest, ShedModeHoldsBudgetThroughAPermanentOutage) {
  const std::string dir = FreshDir("fi_outage");
  ASSERT_TRUE(ArmFailpoints("spill.write=eio;spill.read=eio", 3).ok());
  KeyedEngineOptions options = ShedOptions(dir);
  options.strict_budget = true;
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
  DriveZipf(*engine, 20000, 4000, 11, options.memory_budget_bytes);
  EXPECT_TRUE(engine->status().ok()) << engine->status().ToString();
  EXPECT_EQ(engine->health(), KeyedEngineHealth::kDegraded);
  EXPECT_GT(engine->stats().degraded_drops, 0u);
  EXPECT_GT(engine->stats().shed_bytes, 0u);
  EXPECT_GT(engine->stats().io_giveups, 0u);
  // Every arrival was still ingested.
  EXPECT_EQ(engine->stats().items, 20000u);
}

TEST_F(FaultInjectionTest, BlockModeLatchesOnAPermanentOutage) {
  const std::string dir = FreshDir("fi_block");
  ASSERT_TRUE(ArmFailpoints("spill.write=eio", 3).ok());
  KeyedEngineOptions options = ShedOptions(dir);
  options.degrade = KeyedDegradeMode::kBlock;
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
  // Fail-stop mode keeps re-attempting the blocked eviction on every
  // arrival, so stop shortly after the latch instead of grinding through
  // the whole stream.
  auto zipf = ZipfValues::Create(4000, 1.2).ValueOrDie();
  Rng rng(11);
  uint64_t post_latch = 0;
  for (uint64_t i = 0; i < 20000 && post_latch < 64; ++i) {
    engine->Observe(Item{zipf->Next(rng), i, static_cast<Timestamp>(i)});
    if (!engine->status().ok()) ++post_latch;
  }
  EXPECT_FALSE(engine->status().ok());
  EXPECT_TRUE(engine->status().retryable());
  EXPECT_GT(engine->stats().io_giveups, 0u);
  EXPECT_EQ(engine->health(), KeyedEngineHealth::kDegraded);
}

TEST_F(FaultInjectionTest, HealthReprobesBackToHealthyAfterTheOutageEnds) {
  const std::string dir = FreshDir("fi_reprobe");
  KeyedEngineOptions options = ShedOptions(dir);
  options.io_retry.max_attempts = 3;
  options.reprobe_every_items = 256;
  // times=3 exhausts exactly one operation's retry budget, then the
  // "storage" comes back on its own.
  ASSERT_TRUE(ArmFailpoints("spill.write=eio,times=3", 3).ok());
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
  DriveZipf(*engine, 30000, 4000, 13, options.memory_budget_bytes);
  EXPECT_TRUE(engine->status().ok()) << engine->status().ToString();
  EXPECT_EQ(engine->stats().io_giveups, 1u);
  // The outage degraded the engine, the re-probe noticed recovery, and
  // later spill traffic confirmed it.
  EXPECT_GT(engine->stats().degraded_drops, 0u);
  EXPECT_EQ(engine->health(), KeyedEngineHealth::kHealthy);
  EXPECT_GT(engine->stats().evictions, 0u);
}

TEST_F(FaultInjectionTest, EngineCreateSweepsCrashOrphanedTemps) {
  const std::string dir = FreshDir("fi_engine_sweep");
  std::ofstream(dir + "/key-0000000000000001.ckpt.tmp") << "orphan";
  KeyedEngineOptions options = ShedOptions(dir);
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
  EXPECT_FALSE(fs::exists(dir + "/key-0000000000000001.ckpt.tmp"));
  EXPECT_EQ(engine->stats().spilled_keys, 0u);  // a temp is not a spill
}

// ---------------------------------------------------------------------------
// Checkpoint writer drills

struct CheckpointRig {
  Sink sink;
  std::vector<SinkSerializer> serializers;
  CheckpointManifest manifest;
};

CheckpointRig MakeRig() {
  CheckpointRig rig;
  const SinkSpec spec =
      ParseSinkSpec("bop-seq-single,n=32,seed=6").ValueOrDie();
  rig.sink = CreateSink(spec).ValueOrDie();
  for (uint64_t i = 0; i < 64; ++i) {
    rig.sink.sink->Observe(Item{i, i, static_cast<Timestamp>(i)});
  }
  rig.serializers = MakeSinkSerializers(spec, 1).ValueOrDie();
  rig.manifest.items = 64;
  rig.manifest.shard_items = {64};
  return rig;
}

TEST_F(FaultInjectionTest, CheckpointShardAndManifestFaultsAreRetried) {
  for (const char* site : {"ckpt.write", "ckpt.manifest"}) {
    const std::string dir = FreshDir(std::string("fi_ckpt_") + site);
    DisarmFailpoints();
    ASSERT_TRUE(
        ArmFailpoints(std::string(site) + "=enospc,nth=1", 1).ok());
    CheckpointRig rig = MakeRig();
    CheckpointPolicy policy;
    policy.dir = dir;
    policy.retry.backoff_ms = 0.0;
    CheckpointWriter writer(policy, rig.serializers);
    StreamSink* sink_ptr = rig.sink.sink.get();
    Status s = writer.Write(rig.manifest, {&sink_ptr, 1});
    EXPECT_TRUE(s.ok()) << site << ": " << s.ToString();
    EXPECT_EQ(writer.io_retries(), 1u) << site;
    EXPECT_EQ(writer.io_giveups(), 0u) << site;
    // The retried checkpoint is complete and loadable.
    DisarmFailpoints();
    auto loaded = LoadCheckpoint(dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().position.items, 64u);
  }
}

TEST_F(FaultInjectionTest, CheckpointGivesUpWhenTheOutageIsPermanent) {
  const std::string dir = FreshDir("fi_ckpt_giveup");
  ASSERT_TRUE(ArmFailpoints("ckpt.write=eio", 1).ok());
  CheckpointRig rig = MakeRig();
  CheckpointPolicy policy;
  policy.dir = dir;
  policy.retry.backoff_ms = 0.0;
  CheckpointWriter writer(policy, rig.serializers);
  StreamSink* sink_ptr = rig.sink.sink.get();
  Status s = writer.Write(rig.manifest, {&sink_ptr, 1});
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.retryable());
  EXPECT_GE(writer.io_retries(), 2u);
  EXPECT_EQ(writer.io_giveups(), 1u);
  // The failed Write left no committed MANIFEST and no stray temps.
  EXPECT_FALSE(fs::exists(dir + "/MANIFEST"));
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(name.size() < 4 ||
                name.compare(name.size() - 4, 4, ".tmp") != 0)
        << "leaked temp " << name;
  }
}

TEST_F(FaultInjectionTest, CheckpointGcSweepsCrashOrphanedTemps) {
  const std::string dir = FreshDir("fi_ckpt_sweep");
  CheckpointRig rig = MakeRig();
  CheckpointPolicy policy;
  policy.dir = dir;
  CheckpointWriter writer(policy, rig.serializers);
  StreamSink* sink_ptr = rig.sink.sink.get();
  // Orphans "left by a previous crash" — including a torn MANIFEST temp.
  std::ofstream(dir + "/shard-0000-1.ckpt.tmp") << "orphan";
  std::ofstream(dir + "/MANIFEST.tmp") << "orphan";
  ASSERT_TRUE(writer.Write(rig.manifest, {&sink_ptr, 1}).ok());
  EXPECT_FALSE(fs::exists(dir + "/shard-0000-1.ckpt.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/MANIFEST.tmp"));
  EXPECT_TRUE(fs::exists(dir + "/MANIFEST"));
}

TEST_F(FaultInjectionTest, CheckpointLoadFaultsSurfaceAsStatusNotCrash) {
  const std::string dir = FreshDir("fi_ckpt_read");
  CheckpointRig rig = MakeRig();
  CheckpointPolicy policy;
  policy.dir = dir;
  CheckpointWriter writer(policy, rig.serializers);
  StreamSink* sink_ptr = rig.sink.sink.get();
  ASSERT_TRUE(writer.Write(rig.manifest, {&sink_ptr, 1}).ok());
  for (const char* klass : {"enospc", "eio", "rename"}) {
    ASSERT_TRUE(
        ArmFailpoints(std::string("ckpt.read=") + klass + ",nth=1", 1).ok());
    auto loaded = LoadCheckpoint(dir);
    EXPECT_FALSE(loaded.ok()) << klass;
    EXPECT_TRUE(loaded.status().retryable()) << klass;
  }
  DisarmFailpoints();
  EXPECT_TRUE(LoadCheckpoint(dir).ok());
}

// ---------------------------------------------------------------------------
// Ingestion open seam

TEST_F(FaultInjectionTest, IngestOpenFaultsFailTheDriveWithoutCrashing) {
  const std::string dir = FreshDir("fi_ingest");
  const std::string path = dir + "/events.txt";
  std::ofstream(path) << "1\n2\n3\n";
  const SinkSpec spec =
      ParseSinkSpec("bop-seq-single,n=8,seed=1").ValueOrDie();
  for (const char* klass : {"enospc", "eio"}) {
    ASSERT_TRUE(
        ArmFailpoints(std::string("ingest.open=") + klass + ",nth=1", 1)
            .ok());
    Sink sink = CreateSink(spec).ValueOrDie();
    StreamDriver driver{StreamDriver::Options{}};
    auto result = driver.DriveFile(path, false, *sink.sink);
    EXPECT_FALSE(result.ok()) << klass;
    EXPECT_TRUE(result.status().retryable()) << klass;
  }
  DisarmFailpoints();
  Sink sink = CreateSink(spec).ValueOrDie();
  StreamDriver driver{StreamDriver::Options{}};
  EXPECT_TRUE(driver.DriveFile(path, false, *sink.sink).ok());
}

}  // namespace
}  // namespace swsample
