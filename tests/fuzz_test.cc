// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Differential fuzzing: random operation sequences (bursts of random size,
// silent steps, clock jumps, query storms, and mid-stream checkpoint/
// restore cycles) run against the ExactWindow oracle. At every step, for
// every sampler variant, the harness asserts the full safety contract:
//
//   (1) every sampled item is in the oracle's active set;
//   (2) without-replacement samples are duplicate-free with the exact
//       min(k, n) size;
//   (3) with-replacement samplers return k samples whenever n > 0;
//   (4) internal invariants hold (timestamp machinery);
//   (5) restored checkpoints behave identically to the originals.
//
// Each TEST_P seed is an independent random scenario; failures print the
// seed for deterministic replay.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/exact_window.h"
#include "core/checkpoint.h"
#include "core/registry.h"
#include "util/rng.h"

namespace swsample {
namespace {

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, TimestampSamplersAgainstOracle) {
  const uint64_t seed = GetParam();
  Rng scenario(seed);
  const Timestamp t0 = 1 + static_cast<Timestamp>(scenario.UniformIndex(40));
  const uint64_t k = 1 + scenario.UniformIndex(6);

  SamplerConfig swr_config;
  swr_config.window_t = t0;
  swr_config.k = k;
  swr_config.seed = seed * 3 + 1;
  SamplerConfig swor_config = swr_config;
  swor_config.seed = seed * 3 + 2;
  auto swr = CreateSampler("bop-ts-swr", swr_config).ValueOrDie();
  auto swor = CreateSampler("bop-ts-swor", swor_config).ValueOrDie();
  auto oracle =
      ExactWindow::CreateTimestamp(t0, 1, true, seed * 3 + 3).ValueOrDie();

  uint64_t index = 0;
  Timestamp now = 0;
  for (int step = 0; step < 600; ++step) {
    // Random event mix.
    const uint64_t dice = scenario.UniformIndex(100);
    if (dice < 50) {
      // Burst of 1..12 items.
      const uint64_t burst = 1 + scenario.UniformIndex(12);
      for (uint64_t i = 0; i < burst; ++i) {
        Item item{scenario.NextU64() % 1000, index++, now};
        swr->Observe(item);
        swor->Observe(item);
        oracle->Observe(item);
      }
    } else if (dice < 90) {
      // Silent step(s).
      now += 1 + static_cast<Timestamp>(scenario.UniformIndex(3));
    } else {
      // Clock jump past the whole window.
      now += t0 + static_cast<Timestamp>(scenario.UniformIndex(10));
    }
    swr->AdvanceTime(now);
    swor->AdvanceTime(now);
    oracle->AdvanceTime(now);

    // Occasionally checkpoint-cycle the SWOR sampler through the
    // self-describing envelope (a different process could do this half).
    if (scenario.UniformIndex(20) == 0) {
      std::string blob = SaveSampler(*swor, swor_config).ValueOrDie();
      swor = RestoreSampler(blob).ValueOrDie();
    }

    // Oracle membership set.
    std::set<uint64_t> active;
    for (const Item& item : oracle->contents()) active.insert(item.index);

    auto wr_sample = swr->Sample();
    if (active.empty()) {
      ASSERT_TRUE(wr_sample.empty()) << "seed=" << seed << " step=" << step;
    } else {
      ASSERT_EQ(wr_sample.size(), k) << "seed=" << seed << " step=" << step;
    }
    for (const Item& item : wr_sample) {
      ASSERT_TRUE(active.count(item.index))
          << "seed=" << seed << " step=" << step << " idx=" << item.index;
    }

    auto wor_sample = swor->Sample();
    ASSERT_EQ(wor_sample.size(), std::min<uint64_t>(k, active.size()))
        << "seed=" << seed << " step=" << step;
    std::set<uint64_t> seen;
    for (const Item& item : wor_sample) {
      ASSERT_TRUE(active.count(item.index))
          << "seed=" << seed << " step=" << step << " idx=" << item.index;
      seen.insert(item.index);
    }
    ASSERT_EQ(seen.size(), wor_sample.size())
        << "duplicate in SWOR sample, seed=" << seed << " step=" << step;

    ++now;
  }
}

TEST_P(FuzzSweep, SequenceSamplersAgainstOracle) {
  const uint64_t seed = GetParam();
  Rng scenario(seed ^ 0xabcdef);
  const uint64_t n = 1 + scenario.UniformIndex(100);
  const uint64_t k = 1 + scenario.UniformIndex(std::min<uint64_t>(n, 8));

  SamplerConfig swr_config;
  swr_config.window_n = n;
  swr_config.k = k;
  swr_config.seed = seed * 5 + 1;
  SamplerConfig swor_config = swr_config;
  swor_config.seed = seed * 5 + 2;
  auto swr = CreateSampler("bop-seq-swr", swr_config).ValueOrDie();
  auto swor = CreateSampler("bop-seq-swor", swor_config).ValueOrDie();
  auto oracle =
      ExactWindow::CreateSequence(n, 1, true, seed * 5 + 3).ValueOrDie();

  uint64_t index = 0;
  for (int step = 0; step < 400; ++step) {
    const uint64_t burst = 1 + scenario.UniformIndex(5);
    for (uint64_t i = 0; i < burst; ++i) {
      Item item{scenario.NextU64() % 1000, index,
                static_cast<Timestamp>(index)};
      ++index;
      swr->Observe(item);
      swor->Observe(item);
      oracle->Observe(item);
    }
    if (scenario.UniformIndex(15) == 0) {
      swr = RestoreSampler(SaveSampler(*swr, swr_config).ValueOrDie())
                .ValueOrDie();
      swor = RestoreSampler(SaveSampler(*swor, swor_config).ValueOrDie())
                 .ValueOrDie();
    }
    std::set<uint64_t> active;
    for (const Item& item : oracle->contents()) active.insert(item.index);

    auto wr_sample = swr->Sample();
    ASSERT_EQ(wr_sample.size(), k) << "seed=" << seed << " step=" << step;
    for (const Item& item : wr_sample) {
      ASSERT_TRUE(active.count(item.index))
          << "seed=" << seed << " step=" << step;
    }
    auto wor_sample = swor->Sample();
    ASSERT_EQ(wor_sample.size(), std::min<uint64_t>(k, index))
        << "seed=" << seed << " step=" << step;
    std::set<uint64_t> seen;
    for (const Item& item : wor_sample) {
      ASSERT_TRUE(active.count(item.index))
          << "seed=" << seed << " step=" << step;
      seen.insert(item.index);
    }
    ASSERT_EQ(seen.size(), wor_sample.size())
        << "duplicate in SWOR sample, seed=" << seed << " step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<uint64_t>(1, 17),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace swsample
