// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the implicit-event generator (Lemmas 3.6-3.8): the synthetic
// coin X must hit with probability alpha/(beta+gamma) for every gamma --
// the unknown number of active elements in the straddling bucket -- even
// though the generator never sees gamma.

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "core/implicit_events.h"
#include "util/rng.h"

namespace swsample {
namespace {

// Builds a straddling bucket structure BS(a, b) over elements with
// one-per-timestamp arrivals, where exactly `gamma` of its alpha elements
// are active at `now` with window length t0. Q1 is placed uniformly by the
// caller via `q_index`.
BucketStructure MakeStraddler(uint64_t a, uint64_t alpha, uint64_t q_index,
                              Timestamp now, Timestamp t0, uint64_t gamma) {
  // Elements p_a .. p_{a+alpha-1}; the last `gamma` must be active:
  // timestamp of p_j = now - t0 + 1 - (a + alpha - gamma) + j ... simpler:
  // give p_j timestamp ts_j such that p_j active <=> j >= a + alpha - gamma.
  auto ts_of = [&](uint64_t j) -> Timestamp {
    // Active <=> now - ts < t0 <=> ts > now - t0.
    return (j >= a + alpha - gamma) ? now - t0 + 1 : now - t0;
  };
  BucketStructure bs;
  bs.x = a;
  bs.y = a + alpha;
  bs.first_ts = ts_of(a);
  bs.r = Item{q_index, a, ts_of(a)};  // r unused by the generator
  bs.q = Item{q_index, q_index, ts_of(q_index)};
  return bs;
}

// Empirical check of P(X = 1) = alpha/(beta+gamma).
void CheckX(uint64_t alpha, uint64_t beta, uint64_t gamma, uint64_t seed) {
  ASSERT_LE(gamma, alpha - 1);  // head of straddler must be expired
  const Timestamp t0 = 1000;
  const Timestamp now = 5000;
  const uint64_t a = 17;
  const int trials = 200000;
  Rng rng(seed);
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    // Q1 uniform over the straddler per the bucket-structure contract.
    const uint64_t q_index = a + rng.UniformIndex(alpha);
    BucketStructure bs = MakeStraddler(a, alpha, q_index, now, t0, gamma);
    hits += DrawImplicitEvent(bs, beta, now, t0, rng).x;
  }
  const double want =
      static_cast<double>(alpha) / static_cast<double>(beta + gamma);
  const double got = static_cast<double>(hits) / trials;
  // 4-sigma band for a Bernoulli(want) estimate.
  const double sigma = std::sqrt(want * (1 - want) / trials);
  EXPECT_NEAR(got, want, 4 * sigma + 1e-9)
      << "alpha=" << alpha << " beta=" << beta << " gamma=" << gamma;
}

TEST(ImplicitEventsTest, GammaZero) { CheckX(8, 16, 0, 1); }
TEST(ImplicitEventsTest, GammaSmall) { CheckX(8, 16, 3, 2); }
TEST(ImplicitEventsTest, GammaMax) { CheckX(8, 16, 7, 3); }
TEST(ImplicitEventsTest, AlphaEqualsBeta) { CheckX(16, 16, 5, 4); }
TEST(ImplicitEventsTest, AlphaOne) { CheckX(1, 7, 0, 5); }
TEST(ImplicitEventsTest, WideBucket) { CheckX(64, 100, 33, 6); }
TEST(ImplicitEventsTest, NarrowSuffix) { CheckX(3, 3, 2, 7); }

TEST(ImplicitEventsTest, YExpiredProbabilityMatchesLemma37) {
  // P(Y expired) = beta/(beta+gamma), independent of alpha.
  const uint64_t alpha = 16, beta = 24, gamma = 10;
  const Timestamp t0 = 1000, now = 5000;
  const uint64_t a = 3;
  const int trials = 200000;
  Rng rng(8);
  int expired = 0;
  for (int t = 0; t < trials; ++t) {
    const uint64_t q_index = a + rng.UniformIndex(alpha);
    BucketStructure bs = MakeStraddler(a, alpha, q_index, now, t0, gamma);
    expired += DrawImplicitEvent(bs, beta, now, t0, rng).y_expired;
  }
  const double want =
      static_cast<double>(beta) / static_cast<double>(beta + gamma);
  EXPECT_NEAR(static_cast<double>(expired) / trials, want, 0.005);
}

TEST(ImplicitEventsTest, SCoinMatchesAlphaOverBeta) {
  const uint64_t alpha = 6, beta = 15, gamma = 2;
  const Timestamp t0 = 100, now = 500;
  const int trials = 200000;
  Rng rng(9);
  int s_hits = 0;
  for (int t = 0; t < trials; ++t) {
    const uint64_t q_index = 0 + rng.UniformIndex(alpha);
    BucketStructure bs = MakeStraddler(0, alpha, q_index, now, t0, gamma);
    s_hits += DrawImplicitEvent(bs, beta, now, t0, rng).s;
  }
  EXPECT_NEAR(static_cast<double>(s_hits) / trials, 6.0 / 15.0, 0.005);
}

TEST(ImplicitEventsTest, DrawIsDeterministicGivenRngState) {
  const Timestamp t0 = 100, now = 500;
  BucketStructure bs = MakeStraddler(0, 8, 4, now, t0, 3);
  Rng r1(42), r2(42);
  for (int i = 0; i < 1000; ++i) {
    auto d1 = DrawImplicitEvent(bs, 12, now, t0, r1);
    auto d2 = DrawImplicitEvent(bs, 12, now, t0, r2);
    EXPECT_EQ(d1.x, d2.x);
    EXPECT_EQ(d1.s, d2.s);
    EXPECT_EQ(d1.y_expired, d2.y_expired);
  }
}

}  // namespace
}  // namespace swsample
