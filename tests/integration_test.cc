// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Integration tests: full pipelines (generator -> sampler -> statistics)
// exercising several modules together, the ExactWindow oracle as a
// membership checker for every registered sampler, the disjoint-window
// independence property (Section 1.3.4), and the Theorem 5.1 adapter.
// Samplers are constructed through the registry so the pipeline exercises
// the same entry point production call sites use.

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/exact_window.h"
#include "core/registry.h"
#include "core/sliding_adapter.h"
#include "stats/tests.h"
#include "stream/arrival.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"

namespace swsample {
namespace {

// Every registered sampler's output must lie inside the exact window at
// all times, under a bursty timestamped stream with silent gaps.
TEST(IntegrationTest, AllRegisteredSamplersAgreeWithOracleOnMembership) {
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 16).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(2.0)).ValueOrDie(), 99);
  const Timestamp t0 = 20;
  const uint64_t seq_n = 64, k = 4;

  // One instance of every registered sampler, bucketed by window model.
  std::vector<std::unique_ptr<WindowSampler>> ts_samplers, seq_samplers;
  uint64_t seed = 1;
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    SamplerConfig config;
    config.window_n = seq_n;
    config.window_t = t0;
    config.k = spec.single_sample ? 1 : k;
    config.seed = seed++;
    auto sampler = CreateSampler(spec.name, config).ValueOrDie();
    (spec.model == WindowModel::kTimestamp ? ts_samplers : seq_samplers)
        .push_back(std::move(sampler));
  }
  auto ts_oracle = ExactWindow::CreateTimestamp(t0, 1, true, 31).ValueOrDie();
  auto seq_oracle =
      ExactWindow::CreateSequence(seq_n, 1, true, 32).ValueOrDie();

  for (Timestamp t = 0; t < 1500; ++t) {
    for (const Item& item : stream.Step()) {
      for (auto& s : ts_samplers) s->Observe(item);
      for (auto& s : seq_samplers) s->Observe(item);
      ts_oracle->Observe(item);
      seq_oracle->Observe(item);
    }
    for (auto& s : ts_samplers) s->AdvanceTime(t);
    ts_oracle->AdvanceTime(t);

    // Membership sets from the oracles.
    std::set<uint64_t> ts_active, seq_active;
    for (const Item& item : ts_oracle->contents()) ts_active.insert(item.index);
    for (const Item& item : seq_oracle->contents())
      seq_active.insert(item.index);

    for (auto& s : ts_samplers) {
      for (const Item& item : s->Sample()) {
        EXPECT_TRUE(ts_active.count(item.index))
            << s->name() << " sampled non-active index " << item.index
            << " at t=" << t;
      }
    }
    for (auto& s : seq_samplers) {
      for (const Item& item : s->Sample()) {
        EXPECT_TRUE(seq_active.count(item.index))
            << s->name() << " sampled non-active index " << item.index
            << " at t=" << t;
      }
    }
  }
}

// Section 1.3.4: samples for disjoint (non-overlapping) windows are
// independent. Sample the window ending at bucket boundary 2n and the
// window ending at 4n; both windows are disjoint; the joint distribution
// over (age1, age2) must be uniform on n x n cells.
TEST(IntegrationTest, DisjointWindowSamplesIndependent) {
  const uint64_t n = 4;
  const int trials = 80000;
  std::vector<uint64_t> joint(n * n, 0);
  for (int t = 0; t < trials; ++t) {
    SamplerConfig config;
    config.window_n = n;
    config.seed = 7000 + static_cast<uint64_t>(t);
    auto s = CreateSampler("bop-seq-single", config).ValueOrDie();
    uint64_t first = 0, second = 0;
    for (uint64_t i = 0; i < 4 * n; ++i) {
      s->Observe(Item{i, i, static_cast<Timestamp>(i)});
      if (i + 1 == 2 * n) first = s->Sample()[0].index - n;
      if (i + 1 == 4 * n) second = s->Sample()[0].index - 3 * n;
    }
    ++joint[first * n + second];
  }
  auto result = ChiSquareUniform(joint);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

// The same independence claim for the timestamp sampler.
TEST(IntegrationTest, DisjointWindowIndependenceTimestamp) {
  const Timestamp t0 = 4;
  const int trials = 80000;
  std::vector<uint64_t> joint(t0 * t0, 0);
  for (int t = 0; t < trials; ++t) {
    SamplerConfig config;
    config.window_t = t0;
    config.seed = 90000 + static_cast<uint64_t>(t);
    auto s = CreateSampler("bop-ts-single", config).ValueOrDie();
    uint64_t first = 0, second = 0;
    for (Timestamp i = 0; i < 8; ++i) {
      s->Observe(Item{static_cast<uint64_t>(i), static_cast<uint64_t>(i), i});
      if (i == 3) first = s->Sample()[0].index;           // window {0..3}
      if (i == 7) second = s->Sample()[0].index - 4;      // window {4..7}
    }
    ++joint[first * t0 + second];
  }
  auto result = ChiSquareUniform(joint);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

// Correlation-based independence check on values over a long bursty run.
TEST(IntegrationTest, SampleValuesUncorrelatedAcrossDisjointWindows) {
  const uint64_t n = 32;
  const int trials = 4000;
  std::vector<double> xs, ys;
  for (int t = 0; t < trials; ++t) {
    SamplerConfig config;
    config.window_n = n;
    config.k = 1;
    config.seed = 333 + static_cast<uint64_t>(t);
    auto s = CreateSampler("bop-seq-swor", config).ValueOrDie();
    Rng value_rng(5555 + t);
    std::vector<uint64_t> values(2 * n);
    for (auto& v : values) v = value_rng.UniformIndex(1000);
    double first = 0, second = 0;
    for (uint64_t i = 0; i < 2 * n; ++i) {
      s->Observe(Item{values[i], i, static_cast<Timestamp>(i)});
      if (i + 1 == n) first = static_cast<double>(s->Sample()[0].value);
      if (i + 1 == 2 * n) second = static_cast<double>(s->Sample()[0].value);
    }
    xs.push_back(first);
    ys.push_back(second);
  }
  EXPECT_LT(std::fabs(PearsonCorrelation(xs, ys)), 0.06);
}

// Theorem 5.1 adapter: windowed mean via sampling tracks the exact
// windowed mean of a drifting signal. The adapter consumes any
// registry-built sampler.
TEST(IntegrationTest, SlidingAdapterTracksWindowedMean) {
  const uint64_t n = 256, k = 64;
  SamplerConfig config;
  config.window_n = n;
  config.k = k;
  config.seed = 11;
  auto sampler = CreateSampler("bop-seq-swr", config).ValueOrDie();
  auto estimator = [](const std::vector<Item>& sample) {
    double acc = 0;
    for (const Item& item : sample) acc += static_cast<double>(item.value);
    return sample.empty() ? 0.0 : acc / static_cast<double>(sample.size());
  };
  SlidingAdapter adapter(std::move(sampler), estimator);
  auto oracle = ExactWindow::CreateSequence(n, 1, true, 12).ValueOrDie();

  // Signal drifts: values around i/4.
  Rng rng(13);
  for (uint64_t i = 0; i < 4 * n; ++i) {
    Item item{i / 4 + rng.UniformIndex(8), i, static_cast<Timestamp>(i)};
    adapter.Observe(item);
    oracle->Observe(item);
  }
  double exact_mean = 0;
  for (const Item& item : oracle->contents()) {
    exact_mean += static_cast<double>(item.value);
  }
  exact_mean /= static_cast<double>(oracle->size());
  double est = adapter.Estimate();
  EXPECT_NEAR(est / exact_mean, 1.0, 0.1);
}

// End-to-end determinism: identical seeds yield identical sample streams.
TEST(IntegrationTest, FullyDeterministic) {
  auto run = [] {
    auto stream = SyntheticStream(
        ZipfValues::Create(100, 1.1).ValueOrDie(),
        std::move(PoissonBurstArrivals::Create(1.7)).ValueOrDie(), 21);
    SamplerConfig config;
    config.window_t = 9;
    config.k = 3;
    config.seed = 22;
    auto s = CreateSampler("bop-ts-swor", config).ValueOrDie();
    std::vector<uint64_t> trace;
    for (Timestamp t = 0; t < 300; ++t) {
      for (const Item& item : stream.Step()) s->Observe(item);
      s->AdvanceTime(t);
      for (const Item& item : s->Sample()) trace.push_back(item.index);
    }
    return trace;
  };
  EXPECT_EQ(run(), run());
}

// Seq samplers must tolerate items whose timestamps are nonsense (they
// ignore time entirely).
TEST(IntegrationTest, SequenceSamplersIgnoreTimestamps) {
  SamplerConfig config;
  config.window_n = 8;
  config.k = 2;
  config.seed = 31;
  auto s = CreateSampler("bop-seq-swr", config).ValueOrDie();
  for (uint64_t i = 0; i < 40; ++i) {
    s->Observe(Item{i, i, static_cast<Timestamp>(1000 - i)});
    s->AdvanceTime(0);  // no-op
  }
  EXPECT_EQ(s->Sample().size(), 2u);
}

}  // namespace
}  // namespace swsample
