// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Batched-vs-item-wise equivalence for the keyed engine's demux fast
// path (stream/keyed_engine.h ObserveBatch): the key-run scan, per-key
// micro-batch delivery, TTL generation splits, promotion splits, batched
// SpillBatch evictions and the async restore lane must all reproduce the
// per-item Observe() semantics. The strong form checked here is BYTE
// IDENTITY of every key's SaveKeyState blob (envelope + metadata — RNG
// state, window contents and local index all included). Byte identity
// between item-wise and batched DELIVERY needs sinks whose own
// ObserveBatch is bit-identical to their Observe loop (exact-seq,
// bdm-priority, gl-bounded-priority); the bop samplers' batch fast paths
// are distributionally-but-not-bit identical by design (core/ts_single.h),
// so for those the strong form compares batched against batched (where
// the only degree of freedom is the spill/restore machinery under test)
// and the statistical form is a two-sample chi-square over pooled
// per-key sample window positions under budget-driven churn.
//
// The TSan CI lane runs this binary: the budgeted cases below restore
// through the background reader thread (async_restore default), so the
// Submit/Take/worker handoff is exercised under the race detector.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stat_check.h"
#include "stream/keyed_engine.h"
#include "stream/workload.h"

namespace swsample {
namespace {

namespace fs = std::filesystem;

// Suffix with the pid: sanitizer lanes run this binary concurrently from
// separate build trees, and a shared fixed path lets one lane remove_all
// the other's live spill files mid-test.
std::string FreshDir(const std::string& name) {
  const std::string unique = name + "." + std::to_string(::getpid());
  const std::string dir = (fs::path(::testing::TempDir()) / unique).string();
  fs::remove_all(dir);
  return dir;
}

std::unique_ptr<KeyedWindowEngine> MakeEngine(
    const KeyedEngineOptions& options) {
  auto engine = KeyedWindowEngine::Create(options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

// Feeds `stream` one Observe() per item.
void DriveItemWise(KeyedWindowEngine* engine, std::span<const Item> stream) {
  for (const Item& item : stream) engine->Observe(item);
  ASSERT_TRUE(engine->status().ok()) << engine->status().ToString();
}

// Feeds `stream` through ObserveBatch in `batch`-sized calls (the driver
// shape); `batch` = 0 delivers everything as one call.
void DriveBatched(KeyedWindowEngine* engine, std::span<const Item> stream,
                  size_t batch) {
  if (batch == 0) batch = stream.size();
  for (size_t offset = 0; offset < stream.size(); offset += batch) {
    engine->ObserveBatch(
        stream.subspan(offset, std::min(batch, stream.size() - offset)));
  }
  ASSERT_TRUE(engine->status().ok()) << engine->status().ToString();
}

std::vector<uint64_t> KeysOf(std::span<const Item> stream,
                             uint64_t key_shift = 0) {
  std::vector<uint64_t> keys;
  for (const Item& item : stream) {
    const uint64_t key = item.value >> key_shift;
    bool seen = false;
    for (uint64_t k : keys) seen = seen || k == key;
    if (!seen) keys.push_back(key);
  }
  return keys;
}

// Every key known to `a` must be known to `b` with a byte-identical
// SaveKeyState blob, and vice versa (checked by symmetry of the key
// union). SaveKeyState transparently restores spilled keys, so this
// compares across live/spilled placement differences.
void ExpectSameKeyStates(KeyedWindowEngine* a, KeyedWindowEngine* b,
                         std::span<const uint64_t> keys) {
  for (uint64_t key : keys) {
    ASSERT_EQ(a->HasKey(key), b->HasKey(key)) << "key " << key;
    if (!a->HasKey(key)) continue;
    auto state_a = a->SaveKeyState(key);
    auto state_b = b->SaveKeyState(key);
    ASSERT_TRUE(state_a.ok()) << state_a.status().ToString();
    ASSERT_TRUE(state_b.ok()) << state_b.status().ToString();
    ASSERT_EQ(state_a.value(), state_b.value())
        << "key " << key << " state diverged";
  }
}

TEST(KeyedBatchTest, ZipfBurstStreamMatchesItemWiseByteForByte) {
  // b-model bursts over Zipf keys: long same-key runs (the contiguous
  // fast path) mixed with scattered singletons, plus duplicate replay.
  // bdm-priority keeps RNG priorities in play while its batch path is
  // bit-identical to per-item Observe, so the engine's demux is the only
  // thing that could diverge.
  auto generator =
      WorkloadGenerator::Create(
          "bmodel@zipf,bias=0.75,levels=6,volume=2048,domain=512,alpha=1.2,"
          "dup=0.05",
          0xbadc0de)
          .ValueOrDie();
  const std::vector<Item> stream = generator->Take(50000);

  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bdm-priority,t=512,k=4,seed=99").ValueOrDie();
  auto item_engine = MakeEngine(options);
  DriveItemWise(item_engine.get(), stream);

  // Several batch geometries, including ones that straddle the 16384
  // demux block size and a single whole-stream call.
  for (size_t batch : {512u, 4096u, 16384u, 0u}) {
    auto batch_engine = MakeEngine(options);
    DriveBatched(batch_engine.get(), stream, batch);
    EXPECT_EQ(batch_engine->stats().items, item_engine->stats().items);
    EXPECT_EQ(batch_engine->stats().live_keys,
              item_engine->stats().live_keys);
    ExpectSameKeyStates(item_engine.get(), batch_engine.get(),
                        KeysOf(stream));
  }
}

TEST(KeyedBatchTest, TtlGenerationSplitsLandExactlyWhereItemWiseDrops) {
  // Constructed worst case: same-key gaps of ttl-1 / ttl / ttl+1 within
  // one batch, a key whose two generations live in one 8-item window,
  // and an interleaved key that keeps the clock moving. Expiry must
  // split the run exactly where the per-item TTL sweep would.
  constexpr Timestamp kTtl = 10;
  std::vector<Item> stream;
  StreamIndex index = 0;
  auto emit = [&](uint64_t key, Timestamp at) {
    stream.push_back(Item{key, index++, at});
  };
  emit(1, 0);
  emit(2, 5);
  emit(2, 12);  // the sweep after this sees key 1 idle 12 > ttl: dropped
  emit(1, 12);  // key 1 restarts (generation 2) in the same batch
  emit(1, 13);
  emit(3, 22);  // keys 1 (gap 9) and 2 (gap 10 == ttl, boundary) survive
  emit(2, 22);  // same generation: the pre-arrival gap was exactly ttl
  emit(3, 33);  // key 1 idle 33 - 13 = 20 > ttl: dropped by this sweep
  emit(1, 33);  // generation 3
  for (int i = 0; i < 5; ++i) emit(1, 33);  // contiguous same-key run
  emit(2, 34);  // pre-arrival clock 33, gap 11 > ttl: generation 2

  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("exact-seq,n=8,k=2,seed=5").ValueOrDie();
  options.idle_ttl = kTtl;
  auto item_engine = MakeEngine(options);
  DriveItemWise(item_engine.get(), stream);
  // The whole construction in ONE batch (every split is mid-batch), and
  // again in 4-item calls (splits straddle batch boundaries).
  for (size_t batch : {0u, 4u}) {
    auto batch_engine = MakeEngine(options);
    DriveBatched(batch_engine.get(), stream, batch);
    ExpectSameKeyStates(item_engine.get(), batch_engine.get(),
                        KeysOf(stream));
  }
}

TEST(KeyedBatchTest, PromotionSplitsMicroBatchAtTheExactArrival) {
  // Keys cross promote_after mid-run: the micro-batch must split so the
  // triggering arrival (and everything after) lands in the fresh hot
  // sink with a restarted local index — exactly like item-wise.
  auto generator = WorkloadGenerator::Create(
                       "constant@zipf,rate=6,domain=64,alpha=1.3", 0x9e1d)
                       .ValueOrDie();
  const std::vector<Item> stream = generator->Take(20000);

  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("exact-seq,n=16,k=2,seed=3").ValueOrDie();
  options.hot_spec =
      ParseSinkSpec("gl-bounded-priority,t=64,k=8,seed=4").ValueOrDie();
  options.promote_after = 37;  // lands mid-run for the hot Zipf keys
  auto item_engine = MakeEngine(options);
  DriveItemWise(item_engine.get(), stream);
  for (size_t batch : {1024u, 0u}) {
    auto batch_engine = MakeEngine(options);
    DriveBatched(batch_engine.get(), stream, batch);
    EXPECT_EQ(batch_engine->stats().promotions,
              item_engine->stats().promotions);
    ExpectSameKeyStates(item_engine.get(), batch_engine.get(),
                        KeysOf(stream));
  }
}

TEST(KeyedBatchTest, BudgetedBatchedMatchesUnbudgetedStateExactly) {
  // A binding budget forces mid-batch SpillBatch evictions and async
  // restores; since evict/restore round-trips are bit-exact, every
  // key's state must equal the unbudgeted engine's. This is the batched
  // spill pass + async-restore determinism test.
  auto generator =
      WorkloadGenerator::Create(
          "bmodel@zipf,bias=0.72,levels=6,volume=2048,domain=600,alpha=1.05",
          0x5b1)
          .ValueOrDie();
  const std::vector<Item> stream = generator->Take(60000);

  KeyedEngineOptions unbudgeted;
  unbudgeted.spec =
      ParseSinkSpec("bop-seq-swor,n=32,k=4,seed=11").ValueOrDie();
  auto reference = MakeEngine(unbudgeted);
  DriveBatched(reference.get(), stream, 16384);

  KeyedEngineOptions budgeted = unbudgeted;
  budgeted.memory_budget_bytes = 160 * 1024;  // forces heavy churn
  budgeted.spill_dir = FreshDir("keyed_batch_budget");
  budgeted.fsync_spills = false;
  auto engine = MakeEngine(budgeted);
  DriveBatched(engine.get(), stream, 16384);

  const KeyedEngineStats& stats = engine->stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.restores, 0u);
  EXPECT_GT(stats.spill_batches, 0u);
  EXPECT_GT(stats.prefetched_restores, 0u)
      << "async reader never engaged; prefetch path untested";
  // The batched invariant: the budget holds at every enforcement
  // boundary (micro-batch and block ends).
  EXPECT_LE(stats.peak_charged_bytes, budgeted.memory_budget_bytes);
  ExpectSameKeyStates(reference.get(), engine.get(), KeysOf(stream));
  fs::remove_all(budgeted.spill_dir);
}

TEST(KeyedBatchTest, AsyncRestoreOffIsBitIdenticalToOn) {
  auto generator =
      WorkloadGenerator::Create(
          "poisson@zipf,lambda=8,domain=400,alpha=1.1", 0x77aa)
          .ValueOrDie();
  const std::vector<Item> stream = generator->Take(40000);

  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-ts-single,t=256,seed=21").ValueOrDie();
  options.memory_budget_bytes = 128 * 1024;
  options.fsync_spills = false;

  const std::string async_dir = FreshDir("keyed_batch_async");
  const std::string sync_dir = FreshDir("keyed_batch_sync");

  options.async_restore = true;
  options.spill_dir = async_dir;
  auto async_engine = MakeEngine(options);
  DriveBatched(async_engine.get(), stream, 8192);

  options.async_restore = false;
  options.spill_dir = sync_dir;
  auto sync_engine = MakeEngine(options);
  DriveBatched(sync_engine.get(), stream, 8192);

  EXPECT_GT(async_engine->stats().restores, 0u);
  EXPECT_EQ(async_engine->stats().restores, sync_engine->stats().restores);
  EXPECT_EQ(async_engine->stats().evictions, sync_engine->stats().evictions);
  EXPECT_EQ(sync_engine->stats().prefetched_restores, 0u);
  ExpectSameKeyStates(async_engine.get(), sync_engine.get(), KeysOf(stream));
  fs::remove_all(async_dir);
  fs::remove_all(sync_dir);
}

TEST(KeyedBatchTest, StrictBudgetRecoversExactItemWiseBehavior) {
  // strict_budget must make ObserveBatch literally the per-item loop:
  // same states AND same eviction/restore counters (the relaxed batched
  // path may differ in counters; the strict knob may not).
  auto generator =
      WorkloadGenerator::Create(
          "constant@zipf,rate=4,domain=500,alpha=1.1", 0xfeed)
          .ValueOrDie();
  const std::vector<Item> stream = generator->Take(30000);

  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-seq-single,n=24,seed=9").ValueOrDie();
  options.memory_budget_bytes = 96 * 1024;
  options.fsync_spills = false;

  const std::string ref_dir = FreshDir("keyed_batch_strict_ref");
  const std::string strict_dir = FreshDir("keyed_batch_strict");

  options.spill_dir = ref_dir;
  auto item_engine = MakeEngine(options);
  DriveItemWise(item_engine.get(), stream);

  options.strict_budget = true;
  options.spill_dir = strict_dir;
  auto strict_engine = MakeEngine(options);
  DriveBatched(strict_engine.get(), stream, 4096);

  EXPECT_GT(item_engine->stats().evictions, 0u);
  EXPECT_EQ(strict_engine->stats().evictions,
            item_engine->stats().evictions);
  EXPECT_EQ(strict_engine->stats().restores, item_engine->stats().restores);
  ExpectSameKeyStates(item_engine.get(), strict_engine.get(),
                      KeysOf(stream));
  fs::remove_all(ref_dir);
  fs::remove_all(strict_dir);
}

TEST(KeyedBatchTest, SampleDistributionsMatchUnderEvictRestoreChurn) {
  // Statistical form of the equivalence over a Zipf-burst stream with
  // mid-batch evictions and restores: pool each key's sampled window
  // position (its local index relative to the key's last-n window) from
  // the item-wise and batched engines and compare with the two-sample
  // chi-square; the pooled positions themselves must also be uniform
  // (each per-key sampler is a uniform last-n sampler).
  constexpr uint64_t kWindow = 16;
  constexpr uint64_t kSeed = 0x4b1d;
  auto generator =
      WorkloadGenerator::Create(
          "bmodel@zipf,bias=0.7,levels=5,volume=1024,domain=2048,alpha=1.02",
          kSeed)
          .ValueOrDie();
  const std::vector<Item> stream = generator->Take(80000);

  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-seq-single,n=16,seed=31").ValueOrDie();
  options.memory_budget_bytes = 512 * 1024;
  options.fsync_spills = false;

  const std::string item_dir = FreshDir("keyed_batch_dist_item");
  const std::string batch_dir = FreshDir("keyed_batch_dist_batch");

  options.spill_dir = item_dir;
  auto item_engine = MakeEngine(options);
  DriveItemWise(item_engine.get(), stream);

  options.spill_dir = batch_dir;
  auto batch_engine = MakeEngine(options);
  DriveBatched(batch_engine.get(), stream, 16384);

  std::map<uint64_t, uint64_t> arrivals;
  for (const Item& item : stream) ++arrivals[item.value];

  std::vector<uint64_t> item_counts(kWindow, 0);
  std::vector<uint64_t> batch_counts(kWindow, 0);
  uint64_t compared = 0;
  for (const auto& [key, count] : arrivals) {
    if (count < kWindow) continue;
    ASSERT_TRUE(item_engine->HasKey(key));
    ASSERT_TRUE(batch_engine->HasKey(key));
    auto item_sample = item_engine->SampleKey(key);
    auto batch_sample = batch_engine->SampleKey(key);
    ASSERT_TRUE(item_sample.ok()) << item_sample.status().ToString();
    ASSERT_TRUE(batch_sample.ok()) << batch_sample.status().ToString();
    ASSERT_EQ(item_sample.value().size(), 1u);
    ASSERT_EQ(batch_sample.value().size(), 1u);
    // No TTL here, so the key's local indices run [0, count) in both
    // engines and the sample lies in the last-kWindow range.
    ASSERT_GE(item_sample.value()[0].index, count - kWindow);
    ++item_counts[item_sample.value()[0].index - (count - kWindow)];
    ++batch_counts[batch_sample.value()[0].index - (count - kWindow)];
    ++compared;
  }
  ASSERT_GT(compared, 200u) << "workload too thin to test distributions";
  EXPECT_TRUE(SameDistribution(item_counts, batch_counts, kSeed));
  EXPECT_TRUE(IsUniform(item_counts, kSeed));
  EXPECT_TRUE(IsUniform(batch_counts, kSeed));
  fs::remove_all(item_dir);
  fs::remove_all(batch_dir);
}

}  // namespace
}  // namespace swsample
