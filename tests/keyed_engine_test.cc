// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the multi-tenant keyed window engine (stream/keyed_engine.h):
// (1) per-key samples are uniform over each key's own window — chi-square
// over 10^4 keys against per-key ExactWindow oracles; (2) evict -> process
// death -> restore is bit-identical to an uninterrupted run (spill blobs
// compared byte-for-byte); (3) the retained-bytes budget is never
// exceeded under Zipfian skew; (4) TTL expiry drops idle keys via
// AdvanceTime; (5) tier promotion, per-key estimators, option
// validation, and kKeyHash sharded integration.

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/exact_window.h"
#include "stat_check.h"
#include "stats/tests.h"
#include "stream/keyed_engine.h"
#include "stream/sharded_driver.h"
#include "stream/value_gen.h"
#include "stream/workload.h"
#include "util/rng.h"

namespace swsample {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / name).string();
  fs::remove_all(dir);
  return dir;
}

TEST(KeyedEngineTest, PerKeySamplesUniformOverPerKeyWindows) {
  constexpr uint64_t kKeys = 10000;
  constexpr uint64_t kWindow = 16;
  constexpr uint64_t kRounds = 40;  // arrivals per key; window = last 16

  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-seq-single,n=16,seed=77").ValueOrDie();
  options.max_keys_hint = kKeys;
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();

  // Per-key exact oracles for a deterministic subset (memory-bounded).
  constexpr uint64_t kOracles = 128;
  std::vector<std::unique_ptr<ExactWindow>> oracles;
  for (uint64_t key = 0; key < kOracles; ++key) {
    oracles.push_back(
        ExactWindow::CreateSequence(kWindow, 1, true, key).ValueOrDie());
  }

  // Round-robin interleave so every key's arrivals are spread across the
  // global stream (the adversarial case for per-key re-indexing).
  uint64_t global = 0;
  for (uint64_t round = 0; round < kRounds; ++round) {
    for (uint64_t key = 0; key < kKeys; ++key) {
      const Item item{key, global, static_cast<Timestamp>(global)};
      engine->Observe(item);
      if (key < kOracles) {
        oracles[key]->Observe(
            Item{key, round, static_cast<Timestamp>(global)});
      }
      ++global;
    }
  }
  ASSERT_TRUE(engine->status().ok()) << engine->status().ToString();
  EXPECT_EQ(engine->stats().live_keys, kKeys);
  EXPECT_EQ(engine->stats().items, kKeys * kRounds);

  // Each key's sample must land in ITS last-16 local window; the window
  // position, pooled across 10^4 independent per-key samplers, must be
  // uniform.
  std::vector<uint64_t> position_counts(kWindow, 0);
  for (uint64_t key = 0; key < kKeys; ++key) {
    auto sample = engine->SampleKey(key).ValueOrDie();
    ASSERT_EQ(sample.size(), 1u) << "key " << key;
    const Item& s = sample[0];
    EXPECT_EQ(s.value, key);
    ASSERT_GE(s.index, kRounds - kWindow) << "key " << key;
    ASSERT_LT(s.index, kRounds) << "key " << key;
    ++position_counts[s.index - (kRounds - kWindow)];
    if (key < kOracles) {
      // The oracle holds the same last-16 local items.
      const auto& contents = oracles[key]->contents();
      ASSERT_EQ(contents.size(), kWindow);
      bool found = false;
      for (const Item& item : contents) {
        found = found || (item.index == s.index && item.value == s.value);
      }
      EXPECT_TRUE(found) << "key " << key << " sampled outside its window";
    }
  }
  const ChiSquareResult chi = ChiSquareUniform(position_counts);
  EXPECT_GT(chi.p_value, 1e-3)
      << "chi2=" << chi.statistic << " df=" << chi.df;
}

TEST(KeyedEngineTest, EvictDeathRestoreIsBitIdenticalToUninterrupted) {
  constexpr uint64_t kKeys = 64;
  constexpr uint64_t kItems = 6000;
  const std::string dir = FreshDir("keyed_evict_dir");

  KeyedEngineOptions base;
  base.spec = ParseSinkSpec("bop-seq-swor,n=32,k=4,seed=123").ValueOrDie();
  base.spill_dir = dir;

  // Reference: one engine sees the whole stream, no interruptions.
  KeyedEngineOptions ref_options = base;
  ref_options.spill_dir = "";
  auto reference = KeyedWindowEngine::Create(ref_options).ValueOrDie();

  // Subject: first half, forced full spill (the durable state a SIGKILL
  // would leave behind — every spill file is fsync'd before rename),
  // engine destroyed, a NEW engine adopts the spill directory and sees
  // the second half.
  auto first = KeyedWindowEngine::Create(base).ValueOrDie();
  Rng rng(9);
  std::vector<Item> stream;
  stream.reserve(kItems);
  for (uint64_t i = 0; i < kItems; ++i) {
    stream.push_back(
        Item{rng.UniformIndex(kKeys), i, static_cast<Timestamp>(i)});
  }
  for (uint64_t i = 0; i < kItems; ++i) {
    reference->Observe(stream[i]);
    if (i < kItems / 2) first->Observe(stream[i]);
  }
  for (uint64_t key : first->LiveKeys()) {
    ASSERT_TRUE(first->EvictKey(key).ok());
  }
  EXPECT_EQ(first->stats().live_keys, 0u);
  first.reset();  // process death; only the spill files survive

  auto second = KeyedWindowEngine::Create(base).ValueOrDie();
  EXPECT_EQ(second->stats().spilled_keys, kKeys);
  for (uint64_t i = kItems / 2; i < kItems; ++i) {
    second->Observe(stream[i]);
  }
  ASSERT_TRUE(second->status().ok()) << second->status().ToString();
  EXPECT_EQ(second->stats().restores, kKeys);

  // Byte-for-byte identical per-key state: window contents, local
  // cursors AND RNG streams all survived the evict/death/restore cycle.
  for (uint64_t key = 0; key < kKeys; ++key) {
    auto a = reference->SaveKeyState(key).ValueOrDie();
    auto b = second->SaveKeyState(key).ValueOrDie();
    EXPECT_EQ(a, b) << "key " << key;
  }
}

TEST(KeyedEngineTest, BudgetNeverExceededUnderZipfianSkew) {
  constexpr uint64_t kDomain = 20000;
  constexpr uint64_t kItems = 30000;
  constexpr uint64_t kBudget = 192 * 1024;
  const std::string dir = FreshDir("keyed_budget_dir");

  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-ts-single,t=64,seed=5").ValueOrDie();
  options.memory_budget_bytes = kBudget;
  options.spill_dir = dir;
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();

  auto zipf = ZipfValues::Create(kDomain, 1.1).ValueOrDie();
  Rng rng(17);
  for (uint64_t i = 0; i < kItems; ++i) {
    engine->Observe(
        Item{zipf->Next(rng), i, static_cast<Timestamp>(i)});
    ASSERT_LE(engine->ChargedBytes(), kBudget) << "item " << i;
  }
  ASSERT_TRUE(engine->status().ok()) << engine->status().ToString();
  EXPECT_GT(engine->stats().evictions, 0u);  // the budget actually bound
  EXPECT_LE(engine->stats().peak_charged_bytes, kBudget);
  // The full retained figure additionally carries the spill index.
  EXPECT_GE(engine->RetainedBytes(), engine->ChargedBytes());
  EXPECT_EQ(engine->stats().items, kItems);
  // Hot keys cycle back in after eviction.
  EXPECT_GT(engine->stats().restores, 0u);
}

TEST(KeyedEngineTest, TtlExpiryDropsIdleKeysViaAdvanceTime) {
  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-ts-single,t=100,seed=2").ValueOrDie();
  options.idle_ttl = 50;
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();

  for (uint64_t key = 0; key < 10; ++key) {
    engine->Observe(Item{key, key, static_cast<Timestamp>(key)});
  }
  EXPECT_EQ(engine->stats().live_keys, 10u);

  // Key 3 stays warm; everyone else crosses the TTL.
  engine->Observe(Item{3, 10, 55});
  engine->AdvanceTime(70);
  EXPECT_EQ(engine->stats().live_keys, 1u);
  EXPECT_EQ(engine->stats().expirations, 9u);
  EXPECT_TRUE(engine->HasKey(3));
  EXPECT_FALSE(engine->HasKey(4));
  EXPECT_FALSE(engine->SampleKey(4).ok());

  // An expired key's next arrival starts over on the tail tier.
  engine->Observe(Item{4, 11, 71});
  EXPECT_TRUE(engine->HasKey(4));
  EXPECT_EQ(engine->stats().live_keys, 2u);
}

TEST(KeyedEngineTest, PromotionMovesHotKeysToTheExactTier) {
  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-seq-single,n=32,seed=4").ValueOrDie();
  options.hot_spec = ParseSinkSpec("exact-seq,n=32,k=4,seed=4").ValueOrDie();
  options.promote_after = 10;
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();

  for (uint64_t i = 0; i < 50; ++i) {
    engine->Observe(Item{0, i, static_cast<Timestamp>(i)});  // hot key
  }
  for (uint64_t i = 50; i < 55; ++i) {
    engine->Observe(Item{1, i, static_cast<Timestamp>(i)});  // cold key
  }
  EXPECT_EQ(engine->stats().promotions, 1u);
  // The promoted key answers with the hot tier's k=4 exact sample...
  EXPECT_EQ(engine->SampleKey(0).ValueOrDie().size(), 4u);
  // ...the cold key still answers from the single-sample tail tier.
  EXPECT_EQ(engine->SampleKey(1).ValueOrDie().size(), 1u);
}

TEST(KeyedEngineTest, EstimatorKindEnginesEstimatePerKey) {
  KeyedEngineOptions options;
  options.spec =
      ParseSinkSpec("window-count@exact-ts,t=1000").ValueOrDie();
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();

  for (uint64_t i = 0; i < 5; ++i) {
    engine->Observe(Item{7, i, static_cast<Timestamp>(i)});
  }
  for (uint64_t i = 5; i < 8; ++i) {
    engine->Observe(Item{9, i, static_cast<Timestamp>(i)});
  }
  EXPECT_DOUBLE_EQ(engine->EstimateKey(7).ValueOrDie().value, 5.0);
  EXPECT_DOUBLE_EQ(engine->EstimateKey(9).ValueOrDie().value, 3.0);
  EXPECT_FALSE(engine->SampleKey(7).ok());  // wrong kind for the surface
}

TEST(KeyedEngineTest, CreateValidatesOptions) {
  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-seq-single,n=16").ValueOrDie();

  // Budget without a spill directory: evictions would have nowhere to go.
  options.memory_budget_bytes = 1 << 20;
  EXPECT_FALSE(KeyedWindowEngine::Create(options).ok());
  options.memory_budget_bytes = 0;

  // Unknown tail spec.
  KeyedEngineOptions bad = options;
  bad.spec.name = "no-such-sink";
  EXPECT_FALSE(KeyedWindowEngine::Create(bad).ok());

  // Hot tier of a different kind than the tail tier.
  bad = options;
  bad.hot_spec = ParseSinkSpec("ams-fk,t=100,r=8").ValueOrDie();
  bad.promote_after = 10;
  EXPECT_FALSE(KeyedWindowEngine::Create(bad).ok());

  // Sampler-kind engine rejects the estimator surface.
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();
  engine->Observe(Item{1, 0, 0});
  EXPECT_FALSE(engine->EstimateKey(1).ok());
  EXPECT_FALSE(engine->SampleKey(99).ok());  // unknown key
}

TEST(KeyedEngineTest, SpillRestoreStormKeepsPerKeyUniformityUnderZipfBursts) {
  // Zipf keys on b-model bursts at a budget far below the live key set:
  // hot keys hammer the LRU while whole burst cohorts spill and restore.
  // Spill round-trips are bit-preserving, so every key's sampler must
  // still be uniform over ITS last-kWindow local arrivals at the end.
  constexpr uint64_t kWindow = 8;
  constexpr uint64_t kItems = 40000;
  constexpr uint64_t kBudget = 96 * 1024;
  const std::string dir = FreshDir("keyed_storm_dir");

  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-seq-single,n=8,seed=11").ValueOrDie();
  options.memory_budget_bytes = kBudget;
  options.spill_dir = dir;
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();

  auto gen = WorkloadGenerator::Create(
                 "bmodel@zipf,bias=0.75,levels=8,volume=4096,domain=512,"
                 "alpha=1.1",
                 /*seed=*/29)
                 .ValueOrDie();
  const std::vector<Item> items = gen->Take(kItems);

  std::map<uint64_t, std::unique_ptr<ExactWindow>> oracles;
  std::map<uint64_t, uint64_t> local_count;
  for (const Item& item : items) {
    engine->Observe(item);
    ASSERT_LE(engine->ChargedBytes(), kBudget);
    auto& oracle = oracles[item.value];
    if (!oracle) {
      oracle = ExactWindow::CreateSequence(kWindow, 1, true, item.value)
                   .ValueOrDie();
    }
    oracle->Observe(
        Item{item.value, local_count[item.value]++, item.timestamp});
  }
  ASSERT_TRUE(engine->status().ok()) << engine->status().ToString();
  EXPECT_EQ(engine->stats().items, kItems);
  EXPECT_GT(engine->stats().evictions, 0u);  // the storm actually happened
  EXPECT_GT(engine->stats().restores, 0u);

  // One end-of-stream draw per full-window key, pooled across keys: each
  // draw must land inside that key's exact local window, and the window
  // position must be uniform.
  std::vector<uint64_t> counts(kWindow, 0);
  uint64_t full_window_keys = 0;
  for (const auto& [key, oracle] : oracles) {
    const uint64_t n = local_count[key];
    if (n < kWindow) continue;
    auto sample = engine->SampleKey(key).ValueOrDie();
    ASSERT_EQ(sample.size(), 1u) << "key " << key;
    const Item& s = sample[0];
    EXPECT_EQ(s.value, key);
    ASSERT_GE(s.index, n - kWindow) << "key " << key;
    ASSERT_LT(s.index, n) << "key " << key;
    bool found = false;
    for (const Item& item : oracle->contents()) {
      found = found || item.index == s.index;
    }
    EXPECT_TRUE(found) << "key " << key << " sampled outside its window";
    ++counts[s.index - (n - kWindow)];
    ++full_window_keys;
  }
  EXPECT_GE(full_window_keys, 64u);  // enough pooled draws to mean anything
  EXPECT_TRUE(IsUniform(counts, /*seed=*/29));
}

TEST(KeyedEngineTest, TtlExpiryRacesPromotion) {
  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-ts-single,t=100,seed=8").ValueOrDie();
  options.hot_spec = ParseSinkSpec("exact-ts,t=100,k=4,seed=8").ValueOrDie();
  options.promote_after = 10;
  options.idle_ttl = 50;
  auto engine = KeyedWindowEngine::Create(options).ValueOrDie();

  // Key 1 crosses the promotion threshold (the 10th arrival promotes).
  for (uint64_t i = 0; i < 20; ++i) {
    engine->Observe(Item{1, i, static_cast<Timestamp>(i)});
  }
  EXPECT_EQ(engine->stats().promotions, 1u);
  EXPECT_EQ(engine->SampleKey(1).ValueOrDie().size(), 4u);

  // Key 2 sits one arrival below the threshold when the clock jumps.
  for (uint64_t i = 20; i < 29; ++i) {
    engine->Observe(Item{2, i, static_cast<Timestamp>(i)});
  }
  EXPECT_EQ(engine->stats().promotions, 1u);

  // TTL expiry must evict hot-tier and about-to-promote keys alike.
  engine->AdvanceTime(200);
  EXPECT_FALSE(engine->HasKey(1));
  EXPECT_FALSE(engine->HasKey(2));
  EXPECT_EQ(engine->stats().expirations, 2u);

  // The formerly-promoted key restarts on the tail tier and re-earns
  // promotion from zero: nine arrivals stay k=1, the tenth re-promotes.
  for (uint64_t i = 0; i < 9; ++i) {
    engine->Observe(Item{1, 29 + i, static_cast<Timestamp>(201 + i)});
  }
  EXPECT_EQ(engine->stats().promotions, 1u);
  EXPECT_EQ(engine->SampleKey(1).ValueOrDie().size(), 1u);
  engine->Observe(Item{1, 38, 210});
  EXPECT_EQ(engine->stats().promotions, 2u);
  EXPECT_EQ(engine->SampleKey(1).ValueOrDie().size(), 4u);
}

TEST(KeyedEngineTest, ShardedKeyHashDriveOwnsEachKeyInOneEngine) {
  constexpr uint64_t kShards = 3;
  constexpr uint64_t kKeys = 200;
  constexpr uint64_t kItems = 8000;

  KeyedEngineOptions options;
  options.spec = ParseSinkSpec("bop-seq-swor,n=16,k=2,seed=31").ValueOrDie();
  auto engines = CreateKeyedEngines(options, kShards).ValueOrDie();
  auto sinks = SinkPointers(engines);

  std::vector<Item> items;
  items.reserve(kItems);
  Rng rng(3);
  for (uint64_t i = 0; i < kItems; ++i) {
    items.push_back(
        Item{rng.UniformIndex(kKeys), i, static_cast<Timestamp>(i)});
  }

  ShardedStreamDriver::Options driver_options;
  driver_options.threads = 2;
  driver_options.chunk_items = 64;
  driver_options.partition = ShardPartition::kKeyHash;
  ShardedStreamDriver driver(driver_options);
  auto report = driver.Drive(items, sinks);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().total.items, kItems);

  uint64_t delivered = 0;
  for (const auto& engine : engines) {
    ASSERT_TRUE(engine->status().ok());
    delivered += engine->stats().items;
  }
  EXPECT_EQ(delivered, kItems);

  // Every key lives exactly in the engine ShardOfKey says owns it.
  for (uint64_t key = 0; key < kKeys; ++key) {
    const uint64_t owner = ShardOfKey(key, kShards);
    for (uint64_t shard = 0; shard < kShards; ++shard) {
      EXPECT_EQ(engines[shard]->HasKey(key), shard == owner)
          << "key " << key << " shard " << shard;
    }
  }
}

}  // namespace
}  // namespace swsample
