// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Cross-shard merge algebra: SamplerSnapshot::MergeFrom / MergedSnapshot
// (weighted selection must be uniform over the union) and MergeEstimates
// (shard-sum, weighted-mean and entropy-grouping identities).

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "apps/estimator.h"
#include "baseline/exact_window.h"
#include "core/api.h"
#include "core/registry.h"
#include "stat_check.h"
#include "stats/tests.h"

namespace swsample {
namespace {

Item MakeItem(uint64_t value, StreamIndex index) {
  return Item{value, index, static_cast<Timestamp>(index)};
}

/// An exact sequence-window shard preloaded with `count` items whose
/// values start at `first_value` (locally re-indexed, like a sharded
/// replica's stream).
std::unique_ptr<ExactWindow> MakeExactShard(uint64_t window, uint64_t k,
                                            bool with_replacement,
                                            uint64_t first_value,
                                            uint64_t count, uint64_t seed) {
  auto shard =
      ExactWindow::CreateSequence(window, k, with_replacement, seed)
          .ValueOrDie();
  for (uint64_t i = 0; i < count; ++i) {
    shard->Observe(MakeItem(first_value + i, i));
  }
  return shard;
}

TEST(SamplerSnapshotTest, MergeCapableSamplersSnapshot) {
  for (const char* name :
       {"bop-seq-single", "bop-seq-swr", "bop-seq-swor", "exact-seq",
        "exact-ts"}) {
    SamplerConfig config;
    config.window_n = 64;
    config.window_t = 64;
    config.k = std::string_view(name) == "bop-seq-single" ? 1 : 8;
    config.seed = 7;
    auto sampler = CreateSampler(name, config).ValueOrDie();
    EXPECT_TRUE(sampler->mergeable()) << name;
    for (uint64_t i = 0; i < 100; ++i) sampler->Observe(MakeItem(i, i));
    auto snapshot = sampler->Snapshot();
    ASSERT_TRUE(snapshot.ok()) << name;
    EXPECT_EQ(snapshot.value().active, 64u) << name;
    EXPECT_EQ(snapshot.value().k, config.k) << name;
    EXPECT_FALSE(snapshot.value().sample.empty()) << name;
  }
}

TEST(SamplerSnapshotTest, NonMergeableSamplersRefuse) {
  for (const char* name : {"bdm-chain", "oversample-swor", "bop-ts-swr",
                           "bop-ts-swor", "bdm-priority"}) {
    SamplerConfig config;
    config.window_n = 64;
    config.window_t = 64;
    config.k = 4;
    auto sampler = CreateSampler(name, config).ValueOrDie();
    EXPECT_FALSE(sampler->mergeable()) << name;
    auto snapshot = sampler->Snapshot();
    ASSERT_FALSE(snapshot.ok()) << name;
    EXPECT_EQ(snapshot.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(SamplerSnapshotTest, MergeRejectsIncompatibleSnapshots) {
  Rng rng(1);
  SamplerSnapshot a{/*active=*/4, /*k=*/2, /*without_replacement=*/false,
                    {MakeItem(0, 0), MakeItem(1, 1)}};
  SamplerSnapshot mismatched_k{4, 3, false,
                               {MakeItem(0, 0), MakeItem(1, 1),
                                MakeItem(2, 2)}};
  EXPECT_FALSE(a.MergeFrom(mismatched_k, rng).ok());
  SamplerSnapshot mismatched_mode{4, 2, true,
                                  {MakeItem(0, 0), MakeItem(1, 1)}};
  EXPECT_FALSE(a.MergeFrom(mismatched_mode, rng).ok());
}

TEST(SamplerSnapshotTest, EmptyShardsMergeAsNoOps) {
  Rng rng(2);
  SamplerSnapshot merged{/*active=*/0, /*k=*/2, false, {}};
  SamplerSnapshot empty{0, 2, false, {}};
  ASSERT_TRUE(merged.MergeFrom(empty, rng).ok());
  EXPECT_EQ(merged.active, 0u);
  SamplerSnapshot full{3, 2, false, {MakeItem(5, 0), MakeItem(6, 1)}};
  ASSERT_TRUE(merged.MergeFrom(full, rng).ok());
  EXPECT_EQ(merged.active, 3u);
  EXPECT_EQ(merged.sample.size(), 2u);
  ASSERT_TRUE(merged.MergeFrom(empty, rng).ok());
  EXPECT_EQ(merged.active, 3u);
}

// Uniformity of the merged WITH-replacement sample over the union of two
// unevenly occupied shards: every value must land with probability
// proportional to nothing but its membership (1/300 per slot draw).
TEST(SamplerSnapshotTest, MergedWithReplacementIsUniformOverUnion) {
  constexpr uint64_t kK = 8;
  constexpr uint64_t kTrials = 1500;
  auto shard_a = MakeExactShard(/*window=*/100, kK, /*wr=*/true,
                                /*first_value=*/0, /*count=*/100, 11);
  auto shard_b = MakeExactShard(/*window=*/200, kK, /*wr=*/true,
                                /*first_value=*/100, /*count=*/200, 12);
  std::vector<WindowSampler*> shards = {shard_a.get(), shard_b.get()};
  std::vector<uint64_t> counts(30, 0);  // 30 cells of 10 values
  for (uint64_t trial = 0; trial < kTrials; ++trial) {
    auto merged = MergedSnapshot(shards, /*seed=*/trial).ValueOrDie();
    EXPECT_EQ(merged.active, 300u);
    ASSERT_EQ(merged.sample.size(), kK);
    for (const Item& item : merged.sample) {
      ASSERT_LT(item.value, 300u);
      ++counts[item.value / 10];
    }
  }
  EXPECT_TRUE(IsUniform(counts, /*seed=*/0));
}

// Without replacement: merged samples must be distinct and uniform; the
// hypergeometric allocation gives every union member inclusion
// probability k / |union|.
TEST(SamplerSnapshotTest, MergedWithoutReplacementIsUniformOverUnion) {
  constexpr uint64_t kK = 10;
  constexpr uint64_t kTrials = 1200;
  auto shard_a = MakeExactShard(/*window=*/60, kK, /*wr=*/false,
                                /*first_value=*/0, /*count=*/60, 21);
  auto shard_b = MakeExactShard(/*window=*/240, kK, /*wr=*/false,
                                /*first_value=*/60, /*count=*/240, 22);
  std::vector<WindowSampler*> shards = {shard_a.get(), shard_b.get()};
  std::vector<uint64_t> counts(30, 0);  // 30 cells of 10 values
  for (uint64_t trial = 0; trial < kTrials; ++trial) {
    auto merged = MergedSnapshot(shards, /*seed=*/trial ^ 0xabcd).ValueOrDie();
    EXPECT_EQ(merged.active, 300u);
    ASSERT_EQ(merged.sample.size(), kK);
    std::set<uint64_t> distinct;
    for (const Item& item : merged.sample) {
      ASSERT_LT(item.value, 300u);
      distinct.insert(item.value);
      ++counts[item.value / 10];
    }
    EXPECT_EQ(distinct.size(), kK) << "merged WOR sample has duplicates";
  }
  EXPECT_TRUE(IsUniform(counts, /*seed=*/0xabcd));
}

// Folding more than two shards must stay uniform (associativity in
// distribution) — three uneven WOR shards.
TEST(SamplerSnapshotTest, ThreeWayMergeStaysUniform) {
  constexpr uint64_t kK = 6;
  constexpr uint64_t kTrials = 1500;
  auto shard_a = MakeExactShard(50, kK, /*wr=*/false, 0, 50, 31);
  auto shard_b = MakeExactShard(130, kK, /*wr=*/false, 50, 130, 32);
  auto shard_c = MakeExactShard(120, kK, /*wr=*/false, 180, 120, 33);
  std::vector<WindowSampler*> shards = {shard_a.get(), shard_b.get(),
                                        shard_c.get()};
  std::vector<uint64_t> counts(30, 0);
  for (uint64_t trial = 0; trial < kTrials; ++trial) {
    auto merged = MergedSnapshot(shards, trial * 3 + 1).ValueOrDie();
    EXPECT_EQ(merged.active, 300u);
    for (const Item& item : merged.sample) ++counts[item.value / 10];
  }
  EXPECT_TRUE(IsUniform(counts, /*seed=*/1));
}

// A shard whose window is still filling contributes proportionally to its
// occupancy, not its configured window size.
TEST(SamplerSnapshotTest, PartialShardWeightsByOccupancy) {
  constexpr uint64_t kK = 4;
  constexpr uint64_t kTrials = 4000;
  // Shard A holds only 20 of its 100-item window; B holds a full 80.
  auto shard_a = MakeExactShard(100, kK, /*wr=*/true, 0, 20, 41);
  auto shard_b = MakeExactShard(80, kK, /*wr=*/true, 1000, 80, 42);
  std::vector<WindowSampler*> shards = {shard_a.get(), shard_b.get()};
  uint64_t from_a = 0;
  uint64_t total = 0;
  for (uint64_t trial = 0; trial < kTrials; ++trial) {
    auto merged = MergedSnapshot(shards, trial).ValueOrDie();
    EXPECT_EQ(merged.active, 100u);
    for (const Item& item : merged.sample) {
      from_a += item.value < 1000 ? 1 : 0;
      ++total;
    }
  }
  // E[from_a / total] = 20 / 100; binomial std over 16000 draws ~ 0.003.
  const double frac = static_cast<double>(from_a) / total;
  EXPECT_NEAR(frac, 0.20, 0.02);
}

TEST(MergedSnapshotTest, RejectsEmptyAndNonMergeable) {
  EXPECT_FALSE(MergedSnapshot({}, 0).ok());
  SamplerConfig config;
  config.window_n = 64;
  config.k = 4;
  auto chain = CreateSampler("bdm-chain", config).ValueOrDie();
  std::vector<WindowSampler*> shards = {chain.get()};
  auto merged = MergedSnapshot(shards, 0);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kFailedPrecondition);
}

EstimateReport Report(double value, double window, uint64_t support) {
  EstimateReport report;
  report.value = value;
  report.metric = "test";
  report.window_size = window;
  report.support = support;
  return report;
}

TEST(MergeEstimatesTest, SumAddsValuesAndProvenance) {
  std::vector<EstimateReport> shards = {Report(10.0, 100, 8),
                                        Report(2.5, 50, 4)};
  auto merged = MergeEstimates(EstimateMergeKind::kSum, shards).ValueOrDie();
  EXPECT_DOUBLE_EQ(merged.value, 12.5);
  EXPECT_DOUBLE_EQ(merged.window_size, 150.0);
  EXPECT_EQ(merged.support, 12u);
  EXPECT_EQ(merged.metric, "test");
}

TEST(MergeEstimatesTest, WeightedMeanWeightsByWindowSize) {
  std::vector<EstimateReport> shards = {Report(1.0, 300, 1),
                                        Report(5.0, 100, 1)};
  auto merged =
      MergeEstimates(EstimateMergeKind::kWeightedMean, shards).ValueOrDie();
  EXPECT_DOUBLE_EQ(merged.value, 2.0);  // (300*1 + 100*5) / 400
  // All-empty shards degrade to 0, not NaN.
  std::vector<EstimateReport> empty = {Report(3.0, 0, 0), Report(4.0, 0, 0)};
  EXPECT_DOUBLE_EQ(
      MergeEstimates(EstimateMergeKind::kWeightedMean, empty).ValueOrDie()
          .value,
      0.0);
}

// Shannon grouping rule: shard 1 holds {a:2, b:2} (H = 1 bit over n=4),
// shard 2 holds {c:4} (H = 0, n=4); the union {a:2, b:2, c:4} over n=8
// has H = 1.5 bits.
TEST(MergeEstimatesTest, EntropyFollowsGroupingRule) {
  std::vector<EstimateReport> shards = {Report(1.0, 4, 2),
                                        Report(0.0, 4, 1)};
  auto merged =
      MergeEstimates(EstimateMergeKind::kEntropy, shards).ValueOrDie();
  EXPECT_NEAR(merged.value, 1.5, 1e-12);
  // Empty shards contribute nothing (and no NaN from log2(n/0)).
  std::vector<EstimateReport> with_empty = {Report(1.0, 4, 2),
                                            Report(0.0, 4, 1),
                                            Report(0.0, 0, 0)};
  EXPECT_NEAR(
      MergeEstimates(EstimateMergeKind::kEntropy, with_empty).ValueOrDie()
          .value,
      1.5, 1e-12);
}

TEST(MergeEstimatesTest, RejectsNoneKindAndEmptySpan) {
  std::vector<EstimateReport> shards = {Report(1.0, 4, 2)};
  EXPECT_FALSE(MergeEstimates(EstimateMergeKind::kNone, shards).ok());
  EXPECT_FALSE(MergeEstimates(EstimateMergeKind::kSum, {}).ok());
}

}  // namespace
}  // namespace swsample
