// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Parameterized property sweeps (TEST_P) over (n, k) and (t0, k, lambda)
// grids. For each configuration the invariants that must hold at EVERY
// stream position are re-checked:
//   P1  sample size == k (WR) or min(k, window) (WOR);
//   P2  all sampled items active, WOR samples distinct;
//   P3  memory within the deterministic bound of the matching theorem;
//   P4  per-element inclusion frequencies uniform (coarse chi-square).

#include <algorithm>
#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/seq_swor.h"
#include "core/seq_swr.h"
#include "core/ts_swor.h"
#include "core/ts_swr.h"
#include "stats/tests.h"
#include "stream/arrival.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"
#include "util/bits.h"

namespace swsample {
namespace {

// ---------------------------------------------------------------- sequence

class SeqSweep : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(SeqSweep, SwrInvariantsHoldEverywhere) {
  const auto [n, k] = GetParam();
  auto s = SequenceSwrSampler::Create(n, k, n * 1000 + k).ValueOrDie();
  const uint64_t kBound = 2 + k * (2 * kWordsPerItem + 2);  // O(k) formula
  for (uint64_t i = 0; i < 6 * n + 5; ++i) {
    s->Observe(Item{i, i, static_cast<Timestamp>(i)});
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), k);                                   // P1
    const uint64_t lo = (i + 1 > n) ? i + 1 - n : 0;
    for (const Item& item : sample) {                              // P2
      ASSERT_GE(item.index, lo);
      ASSERT_LE(item.index, i);
    }
    ASSERT_LE(s->MemoryWords(), kBound);                           // P3
  }
}

TEST_P(SeqSweep, SworInvariantsHoldEverywhere) {
  const auto [n, k] = GetParam();
  if (k > n) GTEST_SKIP() << "SWOR requires k <= n";
  auto s = SequenceSworSampler::Create(n, k, n * 999 + k).ValueOrDie();
  const uint64_t kBound = 4 + 2 * k * kWordsPerItem + 2;
  for (uint64_t i = 0; i < 6 * n + 5; ++i) {
    s->Observe(Item{i, i, static_cast<Timestamp>(i)});
    auto sample = s->Sample();
    const uint64_t expect = std::min(k, i + 1);
    ASSERT_EQ(sample.size(), expect);                              // P1
    const uint64_t lo = (i + 1 > n) ? i + 1 - n : 0;
    std::set<uint64_t> idx;
    for (const Item& item : sample) {                              // P2
      ASSERT_GE(item.index, lo);
      ASSERT_LE(item.index, i);
      idx.insert(item.index);
    }
    ASSERT_EQ(idx.size(), sample.size());
    ASSERT_LE(s->MemoryWords(), kBound);                           // P3
  }
}

TEST_P(SeqSweep, SwrInclusionFrequenciesUniform) {
  const auto [n, k] = GetParam();
  if (n > 64) GTEST_SKIP() << "chi-square sweep kept to small windows";
  const int trials = 8000;
  const uint64_t len = 2 * n + n / 2 + 1;
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    auto s =
        SequenceSwrSampler::Create(n, k, t * 31 + n * 7 + k).ValueOrDie();
    for (uint64_t i = 0; i < len; ++i) {
      s->Observe(Item{i, i, static_cast<Timestamp>(i)});
    }
    for (const Item& item : s->Sample()) ++counts[item.index - (len - n)];
  }
  auto result = ChiSquareUniform(counts);                          // P4
  EXPECT_GT(result.p_value, 1e-5)
      << "n=" << n << " k=" << k << " stat=" << result.statistic;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeqSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 16, 64, 257),
                       ::testing::Values(1, 2, 7, 16)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param));
    });

// --------------------------------------------------------------- timestamp

class TsSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, uint64_t, double>> {
};

TEST_P(TsSweep, SwrInvariantsHoldEverywhere) {
  const auto [t0, k, lambda] = GetParam();
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 16).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(lambda)).ValueOrDie(),
      static_cast<uint64_t>(t0) * 100 + k);
  auto s = TsSwrSampler::Create(t0, k, k * 17 + 5).ValueOrDie();
  uint64_t active = 0;
  uint64_t max_active = 0;
  std::vector<Item> window;
  for (Timestamp t = 0; t < 400; ++t) {
    for (const Item& item : stream.Step()) {
      s->Observe(item);
      window.push_back(item);
    }
    s->AdvanceTime(t);
    // Trim the oracle window.
    std::erase_if(window,
                  [&](const Item& item) { return t - item.timestamp >= t0; });
    active = window.size();
    max_active = std::max(max_active, active);
    auto sample = s->Sample();
    if (active == 0) {
      ASSERT_TRUE(sample.empty()) << "t=" << t;
      continue;
    }
    ASSERT_EQ(sample.size(), k) << "t=" << t;                      // P1
    for (const Item& item : sample) {                              // P2
      ASSERT_LT(t - item.timestamp, t0);
    }
  }
  // P3: deterministic O(k log n) bound; max_active bounds n.
  if (max_active >= 2) {
    const uint64_t bound =
        2 + k * (6 + 2 * (2 * FloorLog2(max_active) + 2) *
                         BucketStructure::kWords);
    EXPECT_LE(s->MemoryWords(), bound);
  }
}

TEST_P(TsSweep, SworInvariantsHoldEverywhere) {
  const auto [t0, k, lambda] = GetParam();
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 16).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(lambda)).ValueOrDie(),
      static_cast<uint64_t>(t0) * 131 + k);
  auto s = TsSworSampler::Create(t0, k, k * 13 + 3).ValueOrDie();
  std::vector<Item> window;
  for (Timestamp t = 0; t < 400; ++t) {
    for (const Item& item : stream.Step()) {
      s->Observe(item);
      window.push_back(item);
    }
    s->AdvanceTime(t);
    std::erase_if(window,
                  [&](const Item& item) { return t - item.timestamp >= t0; });
    const uint64_t active = window.size();
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), std::min<uint64_t>(k, active)) << "t=" << t;
    std::set<uint64_t> idx;
    for (const Item& item : sample) {
      ASSERT_LT(t - item.timestamp, t0);
      idx.insert(item.index);
    }
    ASSERT_EQ(idx.size(), sample.size()) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TsSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 2, 5, 17, 50),
                       ::testing::Values<uint64_t>(1, 2, 5, 8),
                       ::testing::Values(0.5, 2.0, 8.0)),
    [](const auto& param_info) {
      return "t0_" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param)) + "_lam" +
             std::to_string(
                 static_cast<int>(std::get<2>(param_info.param) * 10));
    });

}  // namespace
}  // namespace swsample
