// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the sliding quantile estimator (Theorem 5.1 client): DKW sizing,
// rank-error bounds against exact window order statistics, and behaviour on
// both window models.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "apps/quantiles.h"
#include "core/seq_swor.h"
#include "core/ts_swor.h"
#include "util/rng.h"

namespace swsample {
namespace {

TEST(QuantilesTest, CreateValidation) {
  EXPECT_FALSE(QuantileEstimator::Create(nullptr).ok());
  auto sampler = SequenceSworSampler::Create(64, 8, 1).ValueOrDie();
  EXPECT_TRUE(QuantileEstimator::Create(std::move(sampler)).ok());
}

TEST(QuantilesTest, RequiredSampleSizeDkw) {
  // k = ln(2/delta) / (2 eps^2).
  auto k = QuantileEstimator::RequiredSampleSize(0.1, 0.05);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value(),
            static_cast<uint64_t>(std::ceil(std::log(40.0) / 0.02)));
  EXPECT_FALSE(QuantileEstimator::RequiredSampleSize(0.0, 0.5).ok());
  EXPECT_FALSE(QuantileEstimator::RequiredSampleSize(1.5, 0.5).ok());
  EXPECT_FALSE(QuantileEstimator::RequiredSampleSize(0.1, 0.0).ok());
  EXPECT_FALSE(QuantileEstimator::RequiredSampleSize(0.1, 1.0).ok());
}

TEST(QuantilesTest, EmptyWindowReturnsZero) {
  auto est = QuantileEstimator::Create(
                 SequenceSworSampler::Create(16, 4, 2).ValueOrDie())
                 .ValueOrDie();
  EXPECT_EQ(est->Quantile(0.5), 0u);
}

// Rank error of the estimated quantile vs the exact window order statistic.
double RankError(uint64_t estimate, const std::vector<uint64_t>& window,
                 double q) {
  std::vector<uint64_t> sorted = window;
  std::sort(sorted.begin(), sorted.end());
  // Normalized rank of the estimate within the window.
  auto lo = std::lower_bound(sorted.begin(), sorted.end(), estimate);
  auto hi = std::upper_bound(sorted.begin(), sorted.end(), estimate);
  double rank_lo = static_cast<double>(lo - sorted.begin()) /
                   static_cast<double>(sorted.size());
  double rank_hi = static_cast<double>(hi - sorted.begin()) /
                   static_cast<double>(sorted.size());
  if (q < rank_lo) return rank_lo - q;
  if (q > rank_hi) return q - rank_hi;
  return 0.0;
}

TEST(QuantilesTest, MedianWithinDkwBound) {
  const uint64_t n = 4096;
  const double eps = 0.05, delta = 0.01;
  const uint64_t k =
      QuantileEstimator::RequiredSampleSize(eps, delta).ValueOrDie();
  auto est = QuantileEstimator::Create(
                 SequenceSworSampler::Create(n, k, 3).ValueOrDie())
                 .ValueOrDie();
  Rng rng(4);
  std::deque<uint64_t> window;
  for (uint64_t i = 0; i < 3 * n; ++i) {
    uint64_t value = rng.UniformIndex(1 << 20);
    est->Observe(Item{value, i, static_cast<Timestamp>(i)});
    window.push_back(value);
    if (window.size() > n) window.pop_front();
  }
  std::vector<uint64_t> win(window.begin(), window.end());
  // A single draw at fixed seed: rank error within ~2x the eps bound.
  EXPECT_LE(RankError(est->Quantile(0.5), win, 0.5), 2 * eps);
  EXPECT_LE(RankError(est->Quantile(0.9), win, 0.9), 2 * eps);
  EXPECT_LE(RankError(est->Quantile(0.1), win, 0.1), 2 * eps);
}

TEST(QuantilesTest, FailureRateRespectsDelta) {
  // Over many independent runs, the fraction of median estimates breaking
  // the eps rank bound must be at most ~delta.
  const uint64_t n = 512;
  const double eps = 0.1, delta = 0.05;
  const uint64_t k =
      QuantileEstimator::RequiredSampleSize(eps, delta).ValueOrDie();
  // One fixed window of values 0..n-1 shuffled implicitly by insertion.
  int breaches = 0;
  const int runs = 400;
  for (int r = 0; r < runs; ++r) {
    auto est = QuantileEstimator::Create(
                   SequenceSworSampler::Create(n, k, 50 + r).ValueOrDie())
                   .ValueOrDie();
    std::vector<uint64_t> win;
    for (uint64_t i = 0; i < n; ++i) {
      est->Observe(Item{i * 7 % n, i, static_cast<Timestamp>(i)});
      win.push_back(i * 7 % n);
    }
    if (RankError(est->Quantile(0.5), win, 0.5) > eps) ++breaches;
  }
  EXPECT_LE(static_cast<double>(breaches) / runs, 2 * delta);
}

TEST(QuantilesTest, MultipleQuantilesMonotone) {
  auto est = QuantileEstimator::Create(
                 SequenceSworSampler::Create(256, 64, 5).ValueOrDie())
                 .ValueOrDie();
  Rng rng(6);
  for (uint64_t i = 0; i < 1000; ++i) {
    est->Observe(Item{rng.UniformIndex(10000), i, static_cast<Timestamp>(i)});
  }
  auto qs = est->Quantiles({0.1, 0.25, 0.5, 0.75, 0.9});
  ASSERT_EQ(qs.size(), 5u);
  for (size_t i = 1; i < qs.size(); ++i) EXPECT_LE(qs[i - 1], qs[i]);
}

TEST(QuantilesTest, WorksOnTimestampWindows) {
  // Same estimator over a timestamp k-SWOR: window = last 64 ticks.
  auto est = QuantileEstimator::Create(
                 TsSworSampler::Create(64, 32, 7).ValueOrDie())
                 .ValueOrDie();
  // Values equal timestamps: the median of the last 64 ticks is near
  // now - 32.
  for (Timestamp t = 0; t < 500; ++t) {
    est->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
  }
  uint64_t median = est->Quantile(0.5);
  EXPECT_GE(median, 500u - 64u);
  EXPECT_NEAR(static_cast<double>(median), 500.0 - 32.0, 16.0);
}

TEST(QuantilesTest, TracksDriftingDistribution) {
  // Distribution shifts +1000 mid-stream; the windowed median must follow
  // once the window slides past the shift.
  const uint64_t n = 1024;
  auto est = QuantileEstimator::Create(
                 SequenceSworSampler::Create(n, 128, 8).ValueOrDie())
                 .ValueOrDie();
  Rng rng(9);
  for (uint64_t i = 0; i < 2 * n; ++i) {
    est->Observe(Item{rng.UniformIndex(100), i, static_cast<Timestamp>(i)});
  }
  uint64_t before = est->Quantile(0.5);
  for (uint64_t i = 2 * n; i < 4 * n; ++i) {
    est->Observe(
        Item{1000 + rng.UniformIndex(100), i, static_cast<Timestamp>(i)});
  }
  uint64_t after = est->Quantile(0.5);
  EXPECT_LT(before, 100u);
  EXPECT_GE(after, 1000u);
}

}  // namespace
}  // namespace swsample
