// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the sampler registry and the batched ingestion path:
// (1) every registered name constructs from a common SamplerConfig and
// reports itself under the registry key; (2) invalid names and configs are
// rejected through the status mechanism; (3) ObserveBatch — including the
// skip-ahead fast paths of the sequence samplers — is distributionally
// identical to item-by-item Observe; (4) the StreamDriver delivers the
// same arrival/clock order batched as unbatched.

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "stat_check.h"
#include "stats/tests.h"
#include "stream/arrival.h"
#include "stream/driver.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"

namespace swsample {
namespace {

Item MakeItem(uint64_t i) {
  return Item{i, i, static_cast<Timestamp>(i)};
}

SamplerConfig BasicConfig(uint64_t seed = 1) {
  SamplerConfig config;
  config.window_n = 32;
  config.window_t = 32;
  config.k = 1;
  config.seed = seed;
  return config;
}

TEST(RegistryTest, TwelveSamplersRegistered) {
  EXPECT_EQ(RegisteredSamplers().size(), 12u);
}

TEST(RegistryTest, EveryRegisteredNameConstructs) {
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    auto created = CreateSampler(spec.name, BasicConfig());
    ASSERT_TRUE(created.ok()) << spec.name << ": "
                              << created.status().ToString();
    auto sampler = std::move(created).ValueOrDie();
    EXPECT_STREQ(sampler->name(), spec.name);
    EXPECT_EQ(sampler->k(), 1u) << spec.name;
    EXPECT_TRUE(IsRegisteredSampler(spec.name));
  }
}

TEST(RegistryTest, ConstructedSamplersSampleTheirWindow) {
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    auto sampler = CreateSampler(spec.name, BasicConfig()).ValueOrDie();
    for (uint64_t i = 0; i < 100; ++i) sampler->Observe(MakeItem(i));
    for (const Item& item : sampler->Sample()) {
      // Window 32 in both models covers indices/timestamps [68, 99].
      EXPECT_GE(item.index, 68u) << spec.name;
      EXPECT_LE(item.index, 99u) << spec.name;
    }
  }
}

TEST(RegistryTest, UnknownNameRejected) {
  auto created = CreateSampler("no-such-sampler", BasicConfig());
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
  // The error should teach the caller the registered names.
  EXPECT_NE(created.status().message().find("bop-seq-swr"), std::string::npos);
}

TEST(RegistryTest, MissingWindowParameterRejected) {
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    SamplerConfig config = BasicConfig();
    if (spec.model == WindowModel::kSequence) {
      config.window_n = 0;
    } else {
      config.window_t = 0;
    }
    auto created = CreateSampler(spec.name, config);
    EXPECT_FALSE(created.ok()) << spec.name;
    EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument)
        << spec.name;
  }
}

TEST(RegistryTest, SingleVariantsRequireKOne) {
  for (const char* name : {"bop-seq-single", "bop-ts-single"}) {
    SamplerConfig config = BasicConfig();
    config.k = 2;
    auto created = CreateSampler(name, config);
    EXPECT_FALSE(created.ok()) << name;
  }
}

TEST(RegistryTest, SamplerOwnFactoryValidationPropagates) {
  // k > n violates SequenceSworSampler's own 1 <= k <= n precondition.
  SamplerConfig config = BasicConfig();
  config.window_n = 4;
  config.k = 5;
  auto created = CreateSampler("bop-seq-swor", config);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

// --- ObserveBatch vs Observe equivalence -------------------------------

// Feeds `stream_len` items through a fresh sampler per trial, either
// batched (with a batch size straddling bucket boundaries) or item by
// item, and returns the per-window-position sample counts.
std::vector<uint64_t> PositionCounts(const char* name, uint64_t n,
                                     uint64_t stream_len, uint64_t batch,
                                     int trials, uint64_t seed) {
  std::vector<uint64_t> counts(n, 0);
  std::vector<Item> items;
  items.reserve(stream_len);
  for (uint64_t i = 0; i < stream_len; ++i) items.push_back(MakeItem(i));
  for (int t = 0; t < trials; ++t) {
    SamplerConfig config;
    config.window_n = n;
    config.window_t = static_cast<Timestamp>(n);
    config.k = 1;
    config.seed = seed + static_cast<uint64_t>(t);
    auto sampler = CreateSampler(name, config).ValueOrDie();
    if (batch == 0) {
      for (const Item& item : items) sampler->Observe(item);
    } else {
      for (uint64_t pos = 0; pos < stream_len; pos += batch) {
        const uint64_t take = std::min(batch, stream_len - pos);
        sampler->ObserveBatch(
            std::span<const Item>(items.data() + pos, take));
      }
    }
    auto sample = sampler->Sample();
    if (sample.empty()) continue;
    EXPECT_GE(sample[0].index, stream_len - n);
    ++counts[sample[0].index - (stream_len - n)];
  }
  return counts;
}

// The fast paths must stay uniform over the window, at a stream position
// that straddles a bucket boundary, with a batch size that is ragged
// relative to both the bucket and the stream length.
void CheckBatchedUniform(const char* name) {
  const uint64_t n = 24;
  const uint64_t stream_len = 3 * n + 7;
  auto counts = PositionCounts(name, n, stream_len, /*batch=*/17,
                               /*trials=*/30000, /*seed=*/1000);
  EXPECT_TRUE(IsUniform(counts, /*seed=*/1000)) << name << " batched";
}

TEST(RegistryTest, BatchedSeqSwrUniform) { CheckBatchedUniform("bop-seq-swr"); }
TEST(RegistryTest, BatchedSeqSworUniform) {
  CheckBatchedUniform("bop-seq-swor");
}
TEST(RegistryTest, BatchedSeqSingleUniform) {
  CheckBatchedUniform("bop-seq-single");
}

// Batched and unbatched ingestion must agree with each other cell by cell
// (chi-square of one set of counts against the empirical frequencies of
// the other would conflate both samples' noise; comparing both against
// uniform at equal trial counts is the standard equivalence check).
TEST(RegistryTest, BatchMatchesObserveDistributionally) {
  const uint64_t n = 16;
  const uint64_t stream_len = 2 * n + 5;
  const int trials = 30000;
  for (const char* name : {"bop-seq-swr", "bop-seq-swor"}) {
    auto batched = PositionCounts(name, n, stream_len, /*batch=*/13, trials,
                                  /*seed=*/7000);
    auto unbatched = PositionCounts(name, n, stream_len, /*batch=*/0, trials,
                                    /*seed=*/9000);
    // Two-sample chi-square on the contingency table of (position, path).
    EXPECT_TRUE(SameDistribution(batched, unbatched, /*seed=*/7000)) << name;
  }
}

// A without-replacement batch sample must stay distinct.
TEST(RegistryTest, BatchedSworSamplesDistinct) {
  SamplerConfig config = BasicConfig(77);
  config.k = 8;
  auto sampler = CreateSampler("bop-seq-swor", config).ValueOrDie();
  std::vector<Item> items;
  for (uint64_t i = 0; i < 500; ++i) items.push_back(MakeItem(i));
  sampler->ObserveBatch(std::span<const Item>(items.data(), 311));
  sampler->ObserveBatch(std::span<const Item>(items.data() + 311, 189));
  auto sample = sampler->Sample();
  ASSERT_EQ(sample.size(), 8u);
  std::set<uint64_t> indices;
  for (const Item& item : sample) {
    EXPECT_GE(item.index, 500u - 32u);
    indices.insert(item.index);
  }
  EXPECT_EQ(indices.size(), 8u);
}

// --- StreamDriver ------------------------------------------------------

TEST(RegistryTest, DriverDeliversEveryItemToEveryRegisteredSampler) {
  std::vector<Item> items;
  for (uint64_t i = 0; i < 1000; ++i) items.push_back(MakeItem(i));
  for (const SamplerSpec& spec : RegisteredSamplers()) {
    auto sampler = CreateSampler(spec.name, BasicConfig(5)).ValueOrDie();
    StreamDriver::Options options;
    options.batch_size = 64;
    DriveReport report =
        StreamDriver(options).Drive(std::span<const Item>(items), *sampler);
    EXPECT_EQ(report.items, 1000u) << spec.name;
    EXPECT_EQ(report.batches, (1000u + 63) / 64) << spec.name;
    EXPECT_EQ(report.memory_words, sampler->MemoryWords()) << spec.name;
    EXPECT_GE(report.peak_memory_words, report.memory_words) << spec.name;
  }
}

TEST(RegistryTest, DriverAdvancesClockOnEmptySyntheticSteps) {
  // A sparse Poisson stream has many empty steps; the driver must turn
  // them into AdvanceTime calls so timestamp samplers expire correctly.
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 10).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(0.2)).ValueOrDie(), 42);
  SamplerConfig config;
  config.window_t = 10;
  config.k = 1;
  config.seed = 3;
  auto sampler = CreateSampler("bop-ts-swr", config).ValueOrDie();
  StreamDriver::Options options;
  options.batch_size = 32;
  DriveReport report =
      StreamDriver(options).DriveSynthetic(stream, 2000, *sampler);
  EXPECT_GT(report.items, 0u);
  EXPECT_GT(report.empty_steps, 0u);
  EXPECT_EQ(report.items, stream.total_items());
  // After the drive, any sample must be within the window of the final
  // clock position.
  for (const Item& item : sampler->Sample()) {
    EXPECT_GT(item.timestamp, stream.now() - 10);
  }
}

// Writes `text` to a temp stream and drives it through a fresh sampler.
Result<DriveReport> DriveText(const char* text, bool timestamped,
                              WindowSampler& sampler) {
  std::FILE* f = std::tmpfile();
  std::fputs(text, f);
  std::rewind(f);
  auto result = StreamDriver().DriveLines(f, "test-input", timestamped,
                                          sampler);
  std::fclose(f);
  return result;
}

TEST(RegistryTest, DriverSkipsBlankLines) {
  auto sampler = CreateSampler("bop-seq-swr", BasicConfig(11)).ValueOrDie();
  auto result = DriveText("1\n\n2\n   \n\t\n3\n", /*timestamped=*/false,
                          *sampler);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().items, 3u);
}

TEST(RegistryTest, DriverRejectsMalformedLineWithLineNumber) {
  auto sampler = CreateSampler("bop-seq-swr", BasicConfig(12)).ValueOrDie();
  auto result = DriveText("1\n2\nnot-a-number\n4\n", /*timestamped=*/false,
                          *sampler);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("test-input:3"),
            std::string::npos)
      << result.status().ToString();
}

TEST(RegistryTest, DriverRejectsMalformedTimestampedLine) {
  auto sampler = CreateSampler("bop-ts-swr", BasicConfig(13)).ValueOrDie();
  auto result = DriveText("1 10\n2\n", /*timestamped=*/true, *sampler);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("test-input:2"),
            std::string::npos);
}

TEST(RegistryTest, DriverRejectsDecreasingTimestamps) {
  auto sampler = CreateSampler("bop-ts-swr", BasicConfig(14)).ValueOrDie();
  auto result = DriveText("5 10\n3 11\n", /*timestamped=*/true, *sampler);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("non-decreasing"),
            std::string::npos);
}

TEST(RegistryTest, DriverRejectsOverlongLine) {
  auto sampler = CreateSampler("bop-seq-swr", BasicConfig(15)).ValueOrDie();
  std::string text = "1\n" + std::string(300, '7') + "\n";
  auto result = DriveText(text.c_str(), /*timestamped=*/false, *sampler);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("too long"), std::string::npos);
}

TEST(RegistryTest, DriverPerItemModeMatchesBatchedItemCount) {
  std::vector<Item> items;
  for (uint64_t i = 0; i < 257; ++i) items.push_back(MakeItem(i));
  auto sampler = CreateSampler("bdm-chain", BasicConfig(9)).ValueOrDie();
  StreamDriver::Options options;
  options.batch_size = 0;  // per-item Observe
  DriveReport report =
      StreamDriver(options).Drive(std::span<const Item>(items), *sampler);
  EXPECT_EQ(report.items, 257u);
  EXPECT_EQ(report.batches, 257u);
}

}  // namespace
}  // namespace swsample
