// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Unit tests for the reservoir substrate: Algorithm R (single and k-item),
// Algorithm L, and the payload reservoir -- including the distributional
// properties the paper's constructions rely on.

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "reservoir/algorithm_l.h"
#include "reservoir/payload_reservoir.h"
#include "reservoir/reservoir.h"
#include "stats/tests.h"
#include "util/rng.h"

namespace swsample {
namespace {

Item MakeItem(uint64_t i) { return Item{i * 10, i, static_cast<Timestamp>(i)}; }

TEST(SingleReservoirTest, FirstItemAlwaysSampled) {
  SingleReservoir r;
  Rng rng(1);
  r.Observe(MakeItem(0), rng);
  ASSERT_TRUE(r.sample().has_value());
  EXPECT_EQ(r.sample()->index, 0u);
  EXPECT_EQ(r.count(), 1u);
}

TEST(SingleReservoirTest, UniformOverStream) {
  const uint64_t stream_len = 20;
  const int trials = 40000;
  std::vector<uint64_t> counts(stream_len, 0);
  Rng rng(2);
  for (int t = 0; t < trials; ++t) {
    SingleReservoir r;
    for (uint64_t i = 0; i < stream_len; ++i) r.Observe(MakeItem(i), rng);
    ++counts[r.sample()->index];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(SingleReservoirTest, ResetForgets) {
  SingleReservoir r;
  Rng rng(3);
  r.Observe(MakeItem(0), rng);
  r.Reset();
  EXPECT_FALSE(r.sample().has_value());
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.MemoryWords(), 0u);
}

TEST(SingleReservoirTest, IndependencePrefixSuffix) {
  // Section 1.3.4: the sample after i arrivals is independent of whether
  // the FINAL sample lands in the suffix. Empirically: P(final in suffix |
  // prefix sample = p) must equal suffix/total for every p.
  const uint64_t prefix = 8, total = 16;
  const int trials = 60000;
  std::vector<uint64_t> in_suffix(prefix, 0), seen(prefix, 0);
  Rng rng(4);
  for (int t = 0; t < trials; ++t) {
    SingleReservoir r;
    uint64_t i = 0;
    for (; i < prefix; ++i) r.Observe(MakeItem(i), rng);
    uint64_t prefix_sample = r.sample()->index;
    for (; i < total; ++i) r.Observe(MakeItem(i), rng);
    ++seen[prefix_sample];
    if (r.sample()->index >= prefix) ++in_suffix[prefix_sample];
  }
  for (uint64_t p = 0; p < prefix; ++p) {
    ASSERT_GT(seen[p], 0u);
    double frac = static_cast<double>(in_suffix[p]) / seen[p];
    EXPECT_NEAR(frac, 0.5, 0.05) << "prefix sample " << p;
  }
}

TEST(KReservoirTest, HoldsAllWhenFewer) {
  KReservoir r(5);
  Rng rng(5);
  for (uint64_t i = 0; i < 3; ++i) r.Observe(MakeItem(i), rng);
  EXPECT_EQ(r.items().size(), 3u);
}

TEST(KReservoirTest, CapsAtK) {
  KReservoir r(5);
  Rng rng(6);
  for (uint64_t i = 0; i < 100; ++i) r.Observe(MakeItem(i), rng);
  EXPECT_EQ(r.items().size(), 5u);
  EXPECT_EQ(r.count(), 100u);
  // All items distinct.
  std::set<uint64_t> idx;
  for (const Item& item : r.items()) idx.insert(item.index);
  EXPECT_EQ(idx.size(), 5u);
}

TEST(KReservoirTest, PerElementInclusionUniform) {
  // Every element must be included with probability k/N.
  const uint64_t n = 12, k = 3;
  const int trials = 40000;
  std::vector<uint64_t> counts(n, 0);
  Rng rng(7);
  for (int t = 0; t < trials; ++t) {
    KReservoir r(k);
    for (uint64_t i = 0; i < n; ++i) r.Observe(MakeItem(i), rng);
    for (const Item& item : r.items()) ++counts[item.index];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(KReservoirTest, SubsetDistributionUniform) {
  // All C(6,2)=15 subsets equiprobable.
  const uint64_t n = 6, k = 2;
  const int trials = 60000;
  std::vector<uint64_t> counts(15, 0);
  Rng rng(8);
  for (int t = 0; t < trials; ++t) {
    KReservoir r(k);
    for (uint64_t i = 0; i < n; ++i) r.Observe(MakeItem(i), rng);
    std::vector<uint64_t> idx;
    for (const Item& item : r.items()) idx.push_back(item.index);
    std::sort(idx.begin(), idx.end());
    // Rank the pair {a<b} lexicographically.
    uint64_t rank = 0;
    for (uint64_t a = 0; a < idx[0]; ++a) rank += n - 1 - a;
    rank += idx[1] - idx[0] - 1;
    ++counts[rank];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(KReservoirTest, SubsampleUniform) {
  // A uniform 1-subset of the k-reservoir is a uniform element of the
  // stream (the X_V^i property used by Theorem 2.2).
  const uint64_t n = 10, k = 4;
  const int trials = 50000;
  std::vector<uint64_t> counts(n, 0);
  Rng rng(9);
  for (int t = 0; t < trials; ++t) {
    KReservoir r(k);
    for (uint64_t i = 0; i < n; ++i) r.Observe(MakeItem(i), rng);
    std::vector<Item> out;
    r.SubsampleInto(1, rng, &out);
    ASSERT_EQ(out.size(), 1u);
    ++counts[out[0].index];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(KReservoirTest, SubsampleSizesAndDistinctness) {
  KReservoir r(6);
  Rng rng(10);
  for (uint64_t i = 0; i < 50; ++i) r.Observe(MakeItem(i), rng);
  for (uint64_t take = 0; take <= 6; ++take) {
    std::vector<Item> out;
    r.SubsampleInto(take, rng, &out);
    EXPECT_EQ(out.size(), take);
    std::set<uint64_t> idx;
    for (const Item& item : out) idx.insert(item.index);
    EXPECT_EQ(idx.size(), take);
  }
}

TEST(KReservoirTest, MemoryWordsTracksContents) {
  KReservoir r(4);
  Rng rng(11);
  EXPECT_EQ(r.MemoryWords(), 0u);
  r.Observe(MakeItem(0), rng);
  EXPECT_EQ(r.MemoryWords(), kWordsPerItem);
  for (uint64_t i = 1; i < 100; ++i) r.Observe(MakeItem(i), rng);
  EXPECT_EQ(r.MemoryWords(), 4 * kWordsPerItem);
}

TEST(SkipReservoirTest, SameDistributionAsAlgorithmR) {
  const uint64_t n = 30, k = 3;
  const int trials = 40000;
  std::vector<uint64_t> counts(n, 0);
  Rng rng(12);
  for (int t = 0; t < trials; ++t) {
    SkipReservoir r(k);
    for (uint64_t i = 0; i < n; ++i) r.Observe(MakeItem(i), rng);
    for (const Item& item : r.items()) ++counts[item.index];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(SkipReservoirTest, HoldsAllWhenFewer) {
  SkipReservoir r(8);
  Rng rng(13);
  for (uint64_t i = 0; i < 5; ++i) r.Observe(MakeItem(i), rng);
  EXPECT_EQ(r.items().size(), 5u);
}

TEST(SkipReservoirTest, DistinctSlots) {
  SkipReservoir r(5);
  Rng rng(14);
  for (uint64_t i = 0; i < 10000; ++i) r.Observe(MakeItem(i), rng);
  std::set<uint64_t> idx;
  for (const Item& item : r.items()) idx.insert(item.index);
  EXPECT_EQ(idx.size(), 5u);
}

TEST(PayloadReservoirTest, CountsForwardOccurrences) {
  // Payload counts occurrences of the sampled value at/after the sampled
  // position: feed a known pattern and verify against a direct count.
  auto on_sampled = [](const Item&) { return uint64_t{1}; };
  uint64_t sampled_value = 0;
  auto on_arrival = [&](uint64_t& count, const Item& item) {
    if (item.value == sampled_value) ++count;
  };
  // The lambda needs the sampled value; emulate with a wrapper run.
  Rng rng(15);
  for (int trial = 0; trial < 200; ++trial) {
    PayloadReservoir<uint64_t, decltype(on_sampled), decltype(on_arrival)> r(
        on_sampled, on_arrival);
    std::vector<uint64_t> values = {1, 2, 1, 3, 1, 2, 2, 1, 3, 1};
    std::vector<Item> items;
    for (uint64_t i = 0; i < values.size(); ++i) {
      items.push_back(Item{values[i], i, static_cast<Timestamp>(i)});
    }
    uint64_t sampled_at = 0;
    // Replay manually so the on_arrival closure knows the sampled value.
    for (const Item& item : items) {
      uint64_t before = r.count();
      r.Observe(item, rng);
      (void)before;
      if (r.has_sample() && r.item().index == item.index) {
        sampled_value = item.value;
        sampled_at = item.index;
      }
    }
    ASSERT_TRUE(r.has_sample());
    uint64_t expected = 0;
    for (uint64_t i = sampled_at; i < values.size(); ++i) {
      expected += (values[i] == values[sampled_at]);
    }
    EXPECT_EQ(r.payload(), expected);
  }
}

}  // namespace
}  // namespace swsample
