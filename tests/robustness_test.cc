// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Robustness and failure-injection tests: factories must reject every
// invalid configuration, out-of-order input must follow the documented
// clamping contract, and the samplers must survive pathological stream
// shapes (giant bursts, long silences, clock jumps, single-element
// windows).

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "baseline/exact_window.h"
#include "baseline/priority_sampler.h"
#include "core/seq_swor.h"
#include "core/seq_swr.h"
#include "core/ts_single.h"
#include "core/ts_swor.h"
#include "core/ts_swr.h"
#include "util/serial.h"

namespace swsample {
namespace {

// The out-of-order contract (core/api.h): a regressed AdvanceTime is a
// no-op and a regressed Observe timestamp is clamped to the sampler
// clock. These used to SWS_CHECK-abort; the tests pin the clamping
// semantics instead (full matrix in tests/workload_matrix_test.cc).

std::string SavedState(const WindowSampler& s) {
  BinaryWriter w;
  s.SaveState(&w);
  return w.str();
}

TEST(RobustnessTest, ClockMovingBackwardIsANoOp) {
  auto s = TsSwrSampler::Create(10, 1, 1).ValueOrDie();
  s->Observe(Item{0, 0, 100});
  const std::string before = SavedState(*s);
  s->AdvanceTime(99);
  EXPECT_EQ(SavedState(*s), before);
}

TEST(RobustnessTest, TsSworClockBackwardObserveClampsToClock) {
  auto regressed = TsSworSampler::Create(10, 2, 1).ValueOrDie();
  regressed->Observe(Item{0, 0, 100});
  regressed->Observe(Item{1, 1, 50});  // stored as if it arrived at 100
  auto clamped = TsSworSampler::Create(10, 2, 1).ValueOrDie();
  clamped->Observe(Item{0, 0, 100});
  clamped->Observe(Item{1, 1, 100});
  EXPECT_EQ(SavedState(*regressed), SavedState(*clamped));
}

TEST(RobustnessTest, PrioritySamplerClockBackwardIsANoOp) {
  auto s = PrioritySampler::Create(10, 1, 1).ValueOrDie();
  s->Observe(Item{0, 0, 100});
  const std::string before = SavedState(*s);
  s->AdvanceTime(10);
  EXPECT_EQ(SavedState(*s), before);
}

TEST(RobustnessTest, FactoriesRejectAllInvalidConfigs) {
  EXPECT_FALSE(SequenceSwrSampler::Create(0, 1, 1).ok());
  EXPECT_FALSE(SequenceSwrSampler::Create(4, 0, 1).ok());
  EXPECT_FALSE(SequenceSworSampler::Create(4, 5, 1).ok());
  EXPECT_FALSE(TsSwrSampler::Create(0, 1, 1).ok());
  EXPECT_FALSE(TsSworSampler::Create(4, 0, 1).ok());
  EXPECT_FALSE(TsSingleSampler::Create(-5, 1).ok());
  EXPECT_FALSE(ExactWindow::CreateSequence(8, 9, false, 1).ok());
  EXPECT_TRUE(ExactWindow::CreateSequence(8, 9, true, 1).ok());
}

TEST(RobustnessTest, GiantSingleBurst) {
  // 200k items at one timestamp, then silence until all expire.
  auto s = TsSworSampler::Create(4, 8, 2).ValueOrDie();
  for (uint64_t i = 0; i < 200000; ++i) s->Observe(Item{i, i, 0});
  auto sample = s->Sample();
  EXPECT_EQ(sample.size(), 8u);
  s->AdvanceTime(3);
  EXPECT_EQ(s->Sample().size(), 8u);
  s->AdvanceTime(4);
  EXPECT_TRUE(s->Sample().empty());
}

TEST(RobustnessTest, LongSilenceThenResume) {
  auto s = TsSwrSampler::Create(8, 4, 3).ValueOrDie();
  uint64_t index = 0;
  for (Timestamp t = 0; t < 10; ++t) s->Observe(Item{index, index++, t});
  // Clock jumps forward by a million ticks.
  s->AdvanceTime(1000000);
  EXPECT_TRUE(s->Sample().empty());
  for (Timestamp t = 1000000; t < 1000010; ++t) {
    s->Observe(Item{index, index++, t});
  }
  EXPECT_EQ(s->Sample().size(), 4u);
}

TEST(RobustnessTest, RepeatedExpireResumeCycles) {
  auto s = TsSworSampler::Create(3, 3, 4).ValueOrDie();
  uint64_t index = 0;
  Timestamp t = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    for (int i = 0; i < 5; ++i) s->Observe(Item{index, index++, t});
    auto sample = s->Sample();
    EXPECT_FALSE(sample.empty());
    t += 10;  // everything expires
    s->AdvanceTime(t);
    EXPECT_TRUE(s->Sample().empty());
    ++t;
  }
}

TEST(RobustnessTest, WindowOfOneTimestampTick) {
  // t0 = 1: only the current tick's burst is active.
  auto s = TsSwrSampler::Create(1, 2, 5).ValueOrDie();
  uint64_t index = 0;
  for (Timestamp t = 0; t < 50; ++t) {
    for (int i = 0; i < 3; ++i) s->Observe(Item{index, index++, t});
    for (const Item& item : s->Sample()) EXPECT_EQ(item.timestamp, t);
  }
}

TEST(RobustnessTest, AlternatingEmptyBursts) {
  auto s = TsSworSampler::Create(2, 2, 6).ValueOrDie();
  uint64_t index = 0;
  for (Timestamp t = 0; t < 300; ++t) {
    if (t % 3 == 0) {
      s->Observe(Item{index, index++, t});
    } else {
      s->AdvanceTime(t);
    }
    // Window of 2 ticks at 1-in-3 arrival rate: sometimes empty, never
    // stale.
    for (const Item& item : s->Sample()) EXPECT_LT(t - item.timestamp, 2);
  }
}

TEST(RobustnessTest, SequenceSamplersHandleLongStreams) {
  // Tiny window, very long stream: indices far beyond n, no drift.
  auto swr = SequenceSwrSampler::Create(3, 2, 7).ValueOrDie();
  auto swor = SequenceSworSampler::Create(3, 2, 8).ValueOrDie();
  for (uint64_t i = 0; i < 500000; ++i) {
    Item item{i, i, static_cast<Timestamp>(i)};
    swr->Observe(item);
    swor->Observe(item);
  }
  for (const Item& item : swr->Sample()) EXPECT_GE(item.index, 499997u);
  for (const Item& item : swor->Sample()) EXPECT_GE(item.index, 499997u);
}

TEST(RobustnessTest, ManySamplesWithoutObservation) {
  // Query storms between arrivals must not corrupt state.
  auto s = TsSworSampler::Create(5, 3, 9).ValueOrDie();
  uint64_t index = 0;
  for (Timestamp t = 0; t < 20; ++t) {
    s->Observe(Item{index, index++, t});
    for (int q = 0; q < 50; ++q) {
      auto sample = s->Sample();
      for (const Item& item : sample) EXPECT_LT(t - item.timestamp, 5);
    }
  }
}

}  // namespace
}  // namespace swsample
