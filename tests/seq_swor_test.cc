// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for Theorem 2.2: sequence-based sampling without replacement.
// Core claim: at every position P(Z = Q) = 1/C(n, k) for every k-subset Q
// of the window; plus distinctness, window membership, O(k) memory.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/seq_swor.h"
#include "stats/tests.h"

namespace swsample {
namespace {

Item MakeItem(uint64_t i) { return Item{i, i, static_cast<Timestamp>(i)}; }

TEST(SeqSworTest, CreateValidation) {
  EXPECT_FALSE(SequenceSworSampler::Create(0, 1, 1).ok());
  EXPECT_FALSE(SequenceSworSampler::Create(8, 0, 1).ok());
  EXPECT_FALSE(SequenceSworSampler::Create(8, 9, 1).ok());  // k > n
  EXPECT_TRUE(SequenceSworSampler::Create(8, 8, 1).ok());
}

TEST(SeqSworTest, EmptyStreamEmptySample) {
  auto s = SequenceSworSampler::Create(8, 3, 1).ValueOrDie();
  EXPECT_TRUE(s->Sample().empty());
}

TEST(SeqSworTest, StartupReturnsAllArrived) {
  auto s = SequenceSworSampler::Create(16, 4, 2).ValueOrDie();
  for (uint64_t i = 0; i < 3; ++i) {
    s->Observe(MakeItem(i));
    auto sample = s->Sample();
    EXPECT_EQ(sample.size(), i + 1);
  }
}

TEST(SeqSworTest, AlwaysKDistinctInWindow) {
  const uint64_t n = 12, k = 5;
  auto s = SequenceSworSampler::Create(n, k, 3).ValueOrDie();
  for (uint64_t i = 0; i < 8 * n; ++i) {
    s->Observe(MakeItem(i));
    auto sample = s->Sample();
    if (i + 1 >= k) {
      ASSERT_EQ(sample.size(), k) << "at i=" << i;
    }
    std::set<uint64_t> idx;
    const uint64_t lo = (i + 1 > n) ? i + 1 - n : 0;
    for (const Item& item : sample) {
      EXPECT_GE(item.index, lo);
      EXPECT_LE(item.index, i);
      idx.insert(item.index);
    }
    EXPECT_EQ(idx.size(), sample.size()) << "duplicates at i=" << i;
  }
}

// All C(n, k) subsets equiprobable at a given stream length.
void CheckSubsetsUniform(uint64_t n, uint64_t k, uint64_t stream_len,
                         uint64_t seed) {
  const int trials = 60000;
  std::map<std::vector<uint64_t>, uint64_t> counts;
  for (int t = 0; t < trials; ++t) {
    auto s = SequenceSworSampler::Create(n, k, seed + t).ValueOrDie();
    for (uint64_t i = 0; i < stream_len; ++i) s->Observe(MakeItem(i));
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), k);
    std::vector<uint64_t> key;
    for (const Item& item : sample) key.push_back(item.index);
    std::sort(key.begin(), key.end());
    ++counts[key];
  }
  // Expected number of distinct subsets: C(n, k).
  uint64_t binom = 1;
  for (uint64_t j = 0; j < k; ++j) binom = binom * (n - j) / (j + 1);
  ASSERT_EQ(counts.size(), binom);
  std::vector<uint64_t> flat;
  for (const auto& [key, c] : counts) flat.push_back(c);
  auto result = ChiSquareUniform(flat);
  EXPECT_GT(result.p_value, 1e-4)
      << "n=" << n << " k=" << k << " len=" << stream_len
      << " stat=" << result.statistic;
}

TEST(SeqSworTest, SubsetsUniformAtBoundary) {
  CheckSubsetsUniform(/*n=*/6, /*k=*/2, /*stream_len=*/12, /*seed=*/100);
}

TEST(SeqSworTest, SubsetsUniformMidBucket) {
  CheckSubsetsUniform(/*n=*/6, /*k=*/2, /*stream_len=*/15, /*seed=*/200);
}

TEST(SeqSworTest, SubsetsUniformK3) {
  CheckSubsetsUniform(/*n=*/6, /*k=*/3, /*stream_len=*/16, /*seed=*/300);
}

TEST(SeqSworTest, SubsetsUniformKEqualsHalfWindow) {
  CheckSubsetsUniform(/*n=*/8, /*k=*/4, /*stream_len=*/21, /*seed=*/400);
}

TEST(SeqSworTest, KEqualsNReturnsWholeWindow) {
  const uint64_t n = 6;
  auto s = SequenceSworSampler::Create(n, n, 5).ValueOrDie();
  for (uint64_t i = 0; i < 4 * n + 3; ++i) {
    s->Observe(MakeItem(i));
    if (i + 1 < n) continue;
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), n);
    std::set<uint64_t> idx;
    for (const Item& item : sample) idx.insert(item.index);
    // Must be exactly the window.
    EXPECT_EQ(*idx.begin(), i + 1 - n);
    EXPECT_EQ(*idx.rbegin(), i);
    EXPECT_EQ(idx.size(), n);
  }
}

TEST(SeqSworTest, PerElementInclusionUniform) {
  // Marginal inclusion probability must be k/n for every window position.
  const uint64_t n = 10, k = 3;
  const int trials = 30000;
  const uint64_t len = 27;
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    auto s = SequenceSworSampler::Create(n, k, 600 + t).ValueOrDie();
    for (uint64_t i = 0; i < len; ++i) s->Observe(MakeItem(i));
    for (const Item& item : s->Sample()) ++counts[item.index - (len - n)];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(SeqSworTest, MemoryIndependentOfWindowSize) {
  auto words_for = [](uint64_t n) {
    auto s = SequenceSworSampler::Create(n, 4, 7).ValueOrDie();
    uint64_t m = 0;
    for (uint64_t i = 0; i < 4 * n; ++i) {
      s->Observe(MakeItem(i));
      m = std::max(m, s->MemoryWords());
    }
    return m;
  };
  EXPECT_EQ(words_for(1 << 4), words_for(1 << 12));
}

TEST(SeqSworTest, RepeatedQueriesAllValid) {
  // Sample() consumes randomness; repeated queries at one instant must each
  // be valid (k distinct, in-window).
  const uint64_t n = 9, k = 4;
  auto s = SequenceSworSampler::Create(n, k, 8).ValueOrDie();
  for (uint64_t i = 0; i < 25; ++i) s->Observe(MakeItem(i));
  for (int q = 0; q < 100; ++q) {
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), k);
    std::set<uint64_t> idx;
    for (const Item& item : sample) {
      EXPECT_GE(item.index, 25u - n);
      idx.insert(item.index);
    }
    EXPECT_EQ(idx.size(), k);
  }
}

}  // namespace
}  // namespace swsample
