// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for Theorem 2.1: sequence-based sampling with replacement.
// The load-bearing claims: (1) every query returns a uniform sample of the
// window at EVERY stream position, including positions straddling bucket
// boundaries; (2) memory is O(k) and independent of n; (3) samples of the
// k units behave independently.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/seq_swr.h"
#include "stats/tests.h"

namespace swsample {
namespace {

Item MakeItem(uint64_t i) {
  return Item{i, i, static_cast<Timestamp>(i)};
}

TEST(SeqSwrTest, CreateValidation) {
  EXPECT_FALSE(SequenceSwrSampler::Create(0, 1, 1).ok());
  EXPECT_FALSE(SequenceSwrSampler::Create(8, 0, 1).ok());
  EXPECT_TRUE(SequenceSwrSampler::Create(8, 3, 1).ok());
}

TEST(SeqSwrTest, EmptyStreamEmptySample) {
  auto s = SequenceSwrSampler::Create(8, 3, 1).ValueOrDie();
  EXPECT_TRUE(s->Sample().empty());
}

TEST(SeqSwrTest, ReturnsKSamples) {
  auto s = SequenceSwrSampler::Create(8, 5, 2).ValueOrDie();
  for (uint64_t i = 0; i < 20; ++i) s->Observe(MakeItem(i));
  EXPECT_EQ(s->Sample().size(), 5u);
}

TEST(SeqSwrTest, SampleAlwaysInWindow) {
  const uint64_t n = 16;
  auto s = SequenceSwrSampler::Create(n, 4, 3).ValueOrDie();
  for (uint64_t i = 0; i < 10 * n; ++i) {
    s->Observe(MakeItem(i));
    const uint64_t lo = (i + 1 > n) ? i + 1 - n : 0;
    for (const Item& item : s->Sample()) {
      EXPECT_GE(item.index, lo);
      EXPECT_LE(item.index, i);
    }
  }
}

TEST(SeqSwrTest, StartupReturnsSampleOfArrived) {
  auto s = SequenceSwrSampler::Create(100, 1, 4).ValueOrDie();
  s->Observe(MakeItem(0));
  auto sample = s->Sample();
  ASSERT_EQ(sample.size(), 1u);
  EXPECT_EQ(sample[0].index, 0u);
}

// Uniformity at a fixed stream position: chi-square over the window.
void CheckUniformAt(uint64_t n, uint64_t stream_len, uint64_t seed) {
  const int trials = 30000;
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    auto s = SequenceSwrSampler::Create(n, 1, seed + t).ValueOrDie();
    for (uint64_t i = 0; i < stream_len; ++i) s->Observe(MakeItem(i));
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), 1u);
    ASSERT_GE(sample[0].index, stream_len - n);
    ++counts[sample[0].index - (stream_len - n)];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4)
      << "n=" << n << " len=" << stream_len << " stat=" << result.statistic;
}

TEST(SeqSwrTest, UniformAtBucketBoundary) {
  // Window exactly equals a completed bucket.
  CheckUniformAt(/*n=*/8, /*stream_len=*/16, /*seed=*/100);
}

TEST(SeqSwrTest, UniformMidBucket) {
  // Window straddles two buckets (the equivalent-width combination rule).
  CheckUniformAt(/*n=*/8, /*stream_len=*/19, /*seed=*/200);
}

TEST(SeqSwrTest, UniformJustAfterBoundary) {
  CheckUniformAt(/*n=*/8, /*stream_len=*/17, /*seed=*/300);
}

TEST(SeqSwrTest, UniformJustBeforeBoundary) {
  CheckUniformAt(/*n=*/8, /*stream_len=*/23, /*seed=*/400);
}

TEST(SeqSwrTest, UniformOddWindow) {
  CheckUniformAt(/*n=*/7, /*stream_len=*/25, /*seed=*/500);
}

TEST(SeqSwrTest, QueriesAtEveryOffsetStayUniform) {
  // Aggregate over all offsets within a bucket: the sample's AGE (distance
  // from the newest element) must be uniform on [0, n).
  const uint64_t n = 10;
  const int trials = 20000;
  std::vector<uint64_t> age_counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    auto s = SequenceSwrSampler::Create(n, 1, 1000 + t).ValueOrDie();
    const uint64_t len = 2 * n + static_cast<uint64_t>(t) % n;
    for (uint64_t i = 0; i < len; ++i) s->Observe(MakeItem(i));
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), 1u);
    ++age_counts[len - 1 - sample[0].index];
  }
  auto result = ChiSquareUniform(age_counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(SeqSwrTest, MemoryIndependentOfWindowSize) {
  // Theorem 2.1: O(k) words regardless of n. Measure max over a long run.
  uint64_t words_small = 0, words_large = 0;
  {
    auto s = SequenceSwrSampler::Create(1 << 4, 8, 5).ValueOrDie();
    for (uint64_t i = 0; i < 1 << 8; ++i) {
      s->Observe(MakeItem(i));
      words_small = std::max(words_small, s->MemoryWords());
    }
  }
  {
    auto s = SequenceSwrSampler::Create(1 << 14, 8, 5).ValueOrDie();
    for (uint64_t i = 0; i < 1 << 16; ++i) {
      s->Observe(MakeItem(i));
      words_large = std::max(words_large, s->MemoryWords());
    }
  }
  EXPECT_EQ(words_small, words_large);
}

TEST(SeqSwrTest, MemoryLinearInK) {
  auto words_for = [](uint64_t k) {
    auto s = SequenceSwrSampler::Create(64, k, 6).ValueOrDie();
    uint64_t m = 0;
    for (uint64_t i = 0; i < 512; ++i) {
      s->Observe(MakeItem(i));
      m = std::max(m, s->MemoryWords());
    }
    return m;
  };
  const uint64_t w1 = words_for(1), w4 = words_for(4), w16 = words_for(16);
  EXPECT_LT(w4, 8 * w1);
  EXPECT_LT(w16, 8 * w4);
  EXPECT_GT(w16, w4);
  EXPECT_GT(w4, w1);
}

TEST(SeqSwrTest, UnitsAreIndependent) {
  // Joint distribution of two units over a window of 4 must be uniform on
  // the 16 pairs.
  const uint64_t n = 4;
  const int trials = 64000;
  std::vector<uint64_t> counts(n * n, 0);
  for (int t = 0; t < trials; ++t) {
    auto s = SequenceSwrSampler::Create(n, 2, 9000 + t).ValueOrDie();
    for (uint64_t i = 0; i < 11; ++i) s->Observe(MakeItem(i));
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), 2u);
    const uint64_t a = sample[0].index - 7, b = sample[1].index - 7;
    ++counts[a * n + b];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(SeqSwrTest, WindowSizeOne) {
  auto s = SequenceSwrSampler::Create(1, 2, 7).ValueOrDie();
  for (uint64_t i = 0; i < 5; ++i) {
    s->Observe(MakeItem(i));
    for (const Item& item : s->Sample()) EXPECT_EQ(item.index, i);
  }
}

}  // namespace
}  // namespace swsample
