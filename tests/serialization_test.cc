// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Checkpoint/restore tests. The contract is strong: a restored sampler
// must resume the EXACT behaviour of the original -- same samples, same
// memory, same RNG stream -- so checkpointing is invisible to downstream
// consumers. Corrupt blobs (truncation, bad magic, trailing bytes, invalid
// fields) must be rejected with InvalidArgument, never a crash.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/seq_swor.h"
#include "core/seq_swr.h"
#include "core/ts_single.h"
#include "core/ts_swor.h"
#include "core/ts_swr.h"
#include "reservoir/reservoir.h"
#include "stream/arrival.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"
#include "util/serial.h"

namespace swsample {
namespace {

TEST(SerialTest, WriterReaderRoundTrip) {
  BinaryWriter w;
  w.PutU64(0xdeadbeefcafef00dULL);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutBool(false);
  std::string blob = w.Release();
  BinaryReader r(blob);
  uint64_t u;
  int64_t i;
  bool b1, b2;
  ASSERT_TRUE(r.GetU64(&u));
  ASSERT_TRUE(r.GetI64(&i));
  ASSERT_TRUE(r.GetBool(&b1));
  ASSERT_TRUE(r.GetBool(&b2));
  EXPECT_EQ(u, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(i, -42);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, ReaderDetectsTruncation) {
  BinaryWriter w;
  w.PutU64(7);
  std::string blob = w.Release();
  blob.resize(5);
  BinaryReader r(blob);
  uint64_t u;
  EXPECT_FALSE(r.GetU64(&u));
}

TEST(SerialTest, RngStateResumesExactStream) {
  Rng a(12345);
  for (int i = 0; i < 100; ++i) a.NextU64();
  Rng b = Rng::FromState(a.SaveState());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(SerialTest, KReservoirRoundTrip) {
  KReservoir original(5);
  Rng rng(1);
  for (uint64_t i = 0; i < 100; ++i) {
    original.Observe(Item{i, i, static_cast<Timestamp>(i)}, rng);
  }
  BinaryWriter w;
  original.Save(&w);
  std::string blob = w.Release();
  KReservoir restored(1);
  BinaryReader r(blob);
  ASSERT_TRUE(restored.Load(&r));
  EXPECT_EQ(restored.k(), 5u);
  EXPECT_EQ(restored.count(), 100u);
  EXPECT_EQ(restored.items(), original.items());
}

// Generic driver: run `steps` arrivals, checkpoint, keep running both the
// original and the restored sampler in lockstep and require IDENTICAL
// sample sequences (they share RNG state, so equality is exact).
template <typename Sampler, typename RestoreFn>
void CheckResumedEquivalence(std::unique_ptr<Sampler> original,
                             RestoreFn restore, bool timestamped) {
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 16).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(2.5)).ValueOrDie(), 99);
  // Warm-up phase.
  for (Timestamp t = 0; t < 200; ++t) {
    for (const Item& item : stream.Step()) original->Observe(item);
    if (timestamped) original->AdvanceTime(t);
  }
  std::string blob;
  original->SaveState(&blob);
  auto restored = restore(blob);

  // Lockstep phase: identical inputs, identical outputs.
  for (Timestamp t = 200; t < 500; ++t) {
    for (const Item& item : stream.Step()) {
      original->Observe(item);
      restored->Observe(item);
    }
    if (timestamped) {
      original->AdvanceTime(t);
      restored->AdvanceTime(t);
    }
    auto a = original->Sample();
    auto b = restored->Sample();
    ASSERT_EQ(a.size(), b.size()) << "t=" << t;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "t=" << t << " slot=" << i;
    }
    EXPECT_EQ(original->MemoryWords(), restored->MemoryWords());
  }
}

TEST(SerialTest, SeqSwrResumesExactly) {
  CheckResumedEquivalence(
      SequenceSwrSampler::Create(64, 4, 7).ValueOrDie(),
      [](const std::string& blob) {
        return SequenceSwrSampler::Restore(blob).ValueOrDie();
      },
      /*timestamped=*/false);
}

TEST(SerialTest, SeqSworResumesExactly) {
  CheckResumedEquivalence(
      SequenceSworSampler::Create(64, 8, 8).ValueOrDie(),
      [](const std::string& blob) {
        return SequenceSworSampler::Restore(blob).ValueOrDie();
      },
      /*timestamped=*/false);
}

TEST(SerialTest, TsSwrResumesExactly) {
  CheckResumedEquivalence(
      TsSwrSampler::Create(25, 3, 9).ValueOrDie(),
      [](const std::string& blob) {
        return TsSwrSampler::Restore(blob).ValueOrDie();
      },
      /*timestamped=*/true);
}

TEST(SerialTest, TsSworResumesExactly) {
  CheckResumedEquivalence(
      TsSworSampler::Create(25, 5, 10).ValueOrDie(),
      [](const std::string& blob) {
        return TsSworSampler::Restore(blob).ValueOrDie();
      },
      /*timestamped=*/true);
}

TEST(SerialTest, TsSingleRoundTripPreservesInvariants) {
  auto original = TsSingleSampler::Create(17, 11).ValueOrDie();
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 10).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(3.0)).ValueOrDie(), 12);
  for (Timestamp t = 0; t < 300; ++t) {
    for (const Item& item : stream.Step()) original.Observe(item);
  }
  BinaryWriter w;
  original.Save(&w);
  std::string blob = w.Release();
  auto restored = TsSingleSampler::Create(1, 0).ValueOrDie();
  BinaryReader r(blob);
  ASSERT_TRUE(restored.Load(&r));
  ASSERT_TRUE(r.AtEnd());
  EXPECT_TRUE(restored.CheckInvariants());
  EXPECT_EQ(restored.t0(), 17);
  EXPECT_EQ(restored.now(), original.now());
  EXPECT_EQ(restored.MemoryWords(), original.MemoryWords());
  EXPECT_EQ(restored.StructureCount(), original.StructureCount());
}

TEST(SerialTest, RejectsBadMagic) {
  auto s = SequenceSwrSampler::Create(8, 2, 1).ValueOrDie();
  std::string blob;
  s->SaveState(&blob);
  blob[0] ^= 0xff;
  EXPECT_FALSE(SequenceSwrSampler::Restore(blob).ok());
  // A blob of one sampler type must not restore as another.
  s->SaveState(&blob);
  EXPECT_FALSE(SequenceSworSampler::Restore(blob).ok());
  EXPECT_FALSE(TsSwrSampler::Restore(blob).ok());
  EXPECT_FALSE(TsSworSampler::Restore(blob).ok());
}

TEST(SerialTest, RejectsTruncationEverywhere) {
  auto s = TsSworSampler::Create(20, 4, 2).ValueOrDie();
  for (Timestamp t = 0; t < 100; ++t) {
    s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
  }
  std::string blob;
  s->SaveState(&blob);
  ASSERT_TRUE(TsSworSampler::Restore(blob).ok());
  // Every strict prefix must be rejected (never crash).
  for (size_t cut = 0; cut < blob.size(); cut += 7) {
    std::string truncated = blob.substr(0, cut);
    EXPECT_FALSE(TsSworSampler::Restore(truncated).ok()) << "cut=" << cut;
  }
}

TEST(SerialTest, RejectsTrailingGarbage) {
  auto s = SequenceSworSampler::Create(16, 4, 3).ValueOrDie();
  for (uint64_t i = 0; i < 40; ++i) {
    s->Observe(Item{i, i, static_cast<Timestamp>(i)});
  }
  std::string blob;
  s->SaveState(&blob);
  blob += "extra";
  EXPECT_FALSE(SequenceSworSampler::Restore(blob).ok());
}

TEST(SerialTest, RestoredSamplerStaysUniform) {
  // Distributional check: checkpoint/restore mid-stream must not disturb
  // uniformity of the final sample.
  const uint64_t n = 8;
  const int trials = 30000;
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    auto s = SequenceSwrSampler::Create(n, 1, 5000 + t).ValueOrDie();
    std::unique_ptr<SequenceSwrSampler> current = std::move(s);
    for (uint64_t i = 0; i < 21; ++i) {
      current->Observe(Item{i, i, static_cast<Timestamp>(i)});
      if (i == 9) {  // checkpoint mid-bucket
        std::string blob;
        current->SaveState(&blob);
        current = SequenceSwrSampler::Restore(blob).ValueOrDie();
      }
    }
    auto sample = current->Sample();
    ASSERT_EQ(sample.size(), 1u);
    ++counts[sample[0].index - (21 - n)];
  }
  uint64_t min_c = counts[0], max_c = counts[0];
  for (uint64_t c : counts) {
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  // Coarse uniformity band (chi-square done elsewhere; this guards gross
  // distortion from the checkpoint path).
  EXPECT_GT(min_c, trials / n * 0.9);
  EXPECT_LT(max_c, trials / n * 1.1);
}

}  // namespace
}  // namespace swsample
