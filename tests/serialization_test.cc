// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Serialization-primitive and envelope tests. The contract is strong: a
// restored sink must resume the EXACT behaviour of the original -- same
// samples, same memory, same RNG stream -- so checkpointing is invisible
// to downstream consumers. Corrupt blobs (truncation, bad magic, trailing
// bytes, invalid fields) must be rejected with InvalidArgument, never a
// crash. The full registry-matrix resume sweep lives in
// tests/checkpoint_test.cc; this file covers the wire primitives and the
// paper samplers' envelopes in depth.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/registry.h"
#include "core/ts_single.h"
#include "reservoir/reservoir.h"
#include "stream/arrival.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"
#include "util/serial.h"

namespace swsample {
namespace {

TEST(SerialTest, WriterReaderRoundTrip) {
  BinaryWriter w;
  w.PutU64(0xdeadbeefcafef00dULL);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutBool(false);
  w.PutDouble(3.25);
  w.PutString("swsample");
  w.PutBytes(std::string_view("\x00\x01\x02", 3));
  std::string blob = w.Release();
  BinaryReader r(blob);
  uint64_t u;
  int64_t i;
  bool b1, b2;
  double d;
  std::string s, bytes;
  ASSERT_TRUE(r.GetU64(&u));
  ASSERT_TRUE(r.GetI64(&i));
  ASSERT_TRUE(r.GetBool(&b1));
  ASSERT_TRUE(r.GetBool(&b2));
  ASSERT_TRUE(r.GetDouble(&d));
  ASSERT_TRUE(r.GetString(&s));
  ASSERT_TRUE(r.GetBytes(&bytes));
  EXPECT_EQ(u, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(i, -42);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(s, "swsample");
  EXPECT_EQ(bytes, std::string("\x00\x01\x02", 3));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, DoubleRoundTripIsBitExact) {
  const double values[] = {0.0, -0.0, 1.0 / 3.0, 1e-308, -1e308,
                           0.1234567890123456789};
  for (double v : values) {
    BinaryWriter w;
    w.PutDouble(v);
    std::string blob = w.Release();
    BinaryReader r(blob);
    double out;
    ASSERT_TRUE(r.GetDouble(&out));
    EXPECT_EQ(std::bit_cast<uint64_t>(v), std::bit_cast<uint64_t>(out));
  }
}

TEST(SerialTest, ReaderDetectsTruncation) {
  BinaryWriter w;
  w.PutU64(7);
  std::string blob = w.Release();
  blob.resize(5);
  BinaryReader r(blob);
  uint64_t u;
  EXPECT_FALSE(r.GetU64(&u));
}

TEST(SerialTest, LengthPrefixIsDoubleGuarded) {
  // A length prefix larger than the remaining input must fail without
  // allocating, as must one exceeding the explicit cap.
  BinaryWriter w;
  w.PutU64(uint64_t{1} << 60);  // preposterous length prefix
  std::string blob = w.Release();
  {
    BinaryReader r(blob);
    std::string out;
    EXPECT_FALSE(r.GetBytes(&out));
  }
  BinaryWriter w2;
  w2.PutString("0123456789");
  std::string blob2 = w2.Release();
  {
    BinaryReader r(blob2);
    std::string out;
    EXPECT_FALSE(r.GetString(&out, /*max_len=*/4));
  }
  {
    BinaryReader r(blob2);
    std::string out;
    EXPECT_TRUE(r.GetString(&out, /*max_len=*/10));
    EXPECT_EQ(out, "0123456789");
  }
}

TEST(SerialTest, ReaderViewsSubranges) {
  BinaryWriter w;
  w.PutU64(1);
  w.PutU64(2);
  std::string blob = w.Release();
  BinaryReader r(std::string_view(blob).substr(8));
  uint64_t v;
  ASSERT_TRUE(r.GetU64(&v));
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerialTest, RngStateResumesExactStream) {
  Rng a(12345);
  for (int i = 0; i < 100; ++i) a.NextU64();
  Rng b = Rng::FromState(a.SaveState());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(SerialTest, KReservoirRoundTrip) {
  KReservoir original(5);
  Rng rng(1);
  for (uint64_t i = 0; i < 100; ++i) {
    original.Observe(Item{i, i, static_cast<Timestamp>(i)}, rng);
  }
  BinaryWriter w;
  original.Save(&w);
  std::string blob = w.Release();
  KReservoir restored(1);
  BinaryReader r(blob);
  ASSERT_TRUE(restored.Load(&r));
  EXPECT_EQ(restored.k(), 5u);
  EXPECT_EQ(restored.count(), 100u);
  EXPECT_EQ(restored.items(), original.items());
}

// Generic driver: run `steps` arrivals, checkpoint through the envelope,
// keep running both the original and the restored sampler in lockstep and
// require IDENTICAL sample sequences (they share RNG state, so equality
// is exact).
void CheckResumedEquivalence(const std::string& name,
                             const SamplerConfig& config,
                             bool timestamped) {
  auto original = CreateSampler(name, config).ValueOrDie();
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 16).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(2.5)).ValueOrDie(), 99);
  // Warm-up phase.
  for (Timestamp t = 0; t < 200; ++t) {
    for (const Item& item : stream.Step()) original->Observe(item);
    if (timestamped) original->AdvanceTime(t);
  }
  std::string blob = SaveSampler(*original, config).ValueOrDie();
  auto restored = RestoreSampler(blob).ValueOrDie();
  EXPECT_STREQ(restored->name(), original->name());

  // Lockstep phase: identical inputs, identical outputs.
  for (Timestamp t = 200; t < 500; ++t) {
    for (const Item& item : stream.Step()) {
      original->Observe(item);
      restored->Observe(item);
    }
    if (timestamped) {
      original->AdvanceTime(t);
      restored->AdvanceTime(t);
    }
    auto a = original->Sample();
    auto b = restored->Sample();
    ASSERT_EQ(a.size(), b.size()) << "t=" << t;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "t=" << t << " slot=" << i;
    }
    EXPECT_EQ(original->MemoryWords(), restored->MemoryWords());
  }
}

TEST(SerialTest, SeqSwrResumesExactly) {
  SamplerConfig config;
  config.window_n = 64;
  config.k = 4;
  config.seed = 7;
  CheckResumedEquivalence("bop-seq-swr", config, /*timestamped=*/false);
}

TEST(SerialTest, SeqSworResumesExactly) {
  SamplerConfig config;
  config.window_n = 64;
  config.k = 8;
  config.seed = 8;
  CheckResumedEquivalence("bop-seq-swor", config, /*timestamped=*/false);
}

TEST(SerialTest, TsSwrResumesExactly) {
  SamplerConfig config;
  config.window_t = 25;
  config.k = 3;
  config.seed = 9;
  CheckResumedEquivalence("bop-ts-swr", config, /*timestamped=*/true);
}

TEST(SerialTest, TsSworResumesExactly) {
  SamplerConfig config;
  config.window_t = 25;
  config.k = 5;
  config.seed = 10;
  CheckResumedEquivalence("bop-ts-swor", config, /*timestamped=*/true);
}

TEST(SerialTest, TsSingleRoundTripPreservesInvariants) {
  auto original = TsSingleSampler::Create(17, 11).ValueOrDie();
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 10).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(3.0)).ValueOrDie(), 12);
  for (Timestamp t = 0; t < 300; ++t) {
    for (const Item& item : stream.Step()) original.Observe(item);
  }
  BinaryWriter w;
  original.SaveState(&w);
  std::string blob = w.Release();
  // LoadState refills a sampler constructed with the SAME configuration
  // (the envelope normally carries it).
  auto restored = TsSingleSampler::Create(17, 0).ValueOrDie();
  BinaryReader r(blob);
  ASSERT_TRUE(restored.LoadState(&r));
  ASSERT_TRUE(r.AtEnd());
  EXPECT_TRUE(restored.CheckInvariants());
  EXPECT_EQ(restored.t0(), 17);
  EXPECT_EQ(restored.now(), original.now());
  EXPECT_EQ(restored.MemoryWords(), original.MemoryWords());
  EXPECT_EQ(restored.StructureCount(), original.StructureCount());
}

TEST(SerialTest, RejectsBadMagicAndForeignKinds) {
  SamplerConfig config;
  config.window_n = 8;
  config.k = 2;
  config.seed = 1;
  auto s = CreateSampler("bop-seq-swr", config).ValueOrDie();
  std::string blob = SaveSampler(*s, config).ValueOrDie();
  std::string bad = blob;
  bad[0] ^= 0xff;
  EXPECT_FALSE(RestoreSampler(bad).ok());
  // A snapshot envelope must not restore as a sampler and vice versa.
  SamplerSnapshot snapshot;
  std::string snap_blob = SaveSnapshot(snapshot);
  EXPECT_FALSE(RestoreSampler(snap_blob).ok());
  EXPECT_FALSE(RestoreSnapshot(blob).ok());
  EXPECT_EQ(PeekCheckpointKind(blob).ValueOrDie(), CheckpointKind::kSampler);
  EXPECT_EQ(PeekCheckpointKind(snap_blob).ValueOrDie(),
            CheckpointKind::kSnapshot);
}

TEST(SerialTest, RejectsUnsupportedVersion) {
  SamplerConfig config;
  config.window_n = 8;
  config.k = 1;
  auto s = CreateSampler("bop-seq-single", config).ValueOrDie();
  std::string blob = SaveSampler(*s, config).ValueOrDie();
  blob[8] = 99;  // format-version field (bytes 8..15, little-endian)
  EXPECT_FALSE(RestoreSampler(blob).ok());
}

TEST(SerialTest, RejectsTruncationEverywhere) {
  SamplerConfig config;
  config.window_t = 20;
  config.k = 4;
  config.seed = 2;
  auto s = CreateSampler("bop-ts-swor", config).ValueOrDie();
  for (Timestamp t = 0; t < 100; ++t) {
    s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
  }
  std::string blob = SaveSampler(*s, config).ValueOrDie();
  ASSERT_TRUE(RestoreSampler(blob).ok());
  // Every strict prefix must be rejected (never crash).
  for (size_t cut = 0; cut < blob.size(); cut += 7) {
    EXPECT_FALSE(RestoreSampler(blob.substr(0, cut)).ok()) << "cut=" << cut;
  }
}

TEST(SerialTest, RejectsTrailingGarbage) {
  SamplerConfig config;
  config.window_n = 16;
  config.k = 4;
  config.seed = 3;
  auto s = CreateSampler("bop-seq-swor", config).ValueOrDie();
  for (uint64_t i = 0; i < 40; ++i) {
    s->Observe(Item{i, i, static_cast<Timestamp>(i)});
  }
  std::string blob = SaveSampler(*s, config).ValueOrDie();
  blob += "extra";
  EXPECT_FALSE(RestoreSampler(blob).ok());
}

TEST(SerialTest, SaveRejectsUnregisteredOrForeignConfig) {
  SamplerConfig config;
  config.window_n = 8;
  config.k = 2;
  auto s = CreateSampler("bop-seq-swr", config).ValueOrDie();
  // Envelope config is trusted input to CreateSampler on restore: an
  // invalid one must fail the restore, not crash it.
  SamplerConfig broken = config;
  broken.window_n = 0;
  std::string blob = SaveSampler(*s, broken).ValueOrDie();
  EXPECT_FALSE(RestoreSampler(blob).ok());
}

TEST(SerialTest, RestoredSamplerStaysUniform) {
  // Distributional check: checkpoint/restore mid-stream must not disturb
  // uniformity of the final sample.
  const uint64_t n = 8;
  const int trials = 30000;
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    SamplerConfig config;
    config.window_n = n;
    config.k = 1;
    config.seed = 5000 + static_cast<uint64_t>(t);
    auto current = CreateSampler("bop-seq-swr", config).ValueOrDie();
    for (uint64_t i = 0; i < 21; ++i) {
      current->Observe(Item{i, i, static_cast<Timestamp>(i)});
      if (i == 9) {  // checkpoint mid-bucket
        std::string blob = SaveSampler(*current, config).ValueOrDie();
        current = RestoreSampler(blob).ValueOrDie();
      }
    }
    auto sample = current->Sample();
    ASSERT_EQ(sample.size(), 1u);
    ++counts[sample[0].index - (21 - n)];
  }
  uint64_t min_c = counts[0], max_c = counts[0];
  for (uint64_t c : counts) {
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  // Coarse uniformity band (chi-square done elsewhere; this guards gross
  // distortion from the checkpoint path).
  EXPECT_GT(min_c, trials / n * 0.9);
  EXPECT_LT(max_c, trials / n * 1.1);
}

TEST(SerialTest, SnapshotRoundTripsAndMergesAcrossProcesses) {
  // Two shards snapshot, the blobs travel, and the restored snapshots
  // merge exactly as the in-process originals would.
  SamplerConfig config;
  config.window_n = 32;
  config.k = 4;
  config.seed = 21;
  auto a = CreateSampler("bop-seq-swor", config).ValueOrDie();
  config.seed = 22;
  auto b = CreateSampler("bop-seq-swor", config).ValueOrDie();
  for (uint64_t i = 0; i < 100; ++i) {
    a->Observe(Item{i, i, static_cast<Timestamp>(i)});
    b->Observe(Item{1000 + i, i, static_cast<Timestamp>(i)});
  }
  auto snap_a = std::move(a->Snapshot()).ValueOrDie();
  auto snap_b = std::move(b->Snapshot()).ValueOrDie();
  std::string blob_a = SaveSnapshot(snap_a);
  std::string blob_b = SaveSnapshot(snap_b);
  auto restored_a = RestoreSnapshot(blob_a).ValueOrDie();
  auto restored_b = RestoreSnapshot(blob_b).ValueOrDie();
  EXPECT_EQ(restored_a.active, snap_a.active);
  EXPECT_EQ(restored_a.k, snap_a.k);
  EXPECT_EQ(restored_a.without_replacement, snap_a.without_replacement);
  EXPECT_EQ(restored_a.sample, snap_a.sample);
  Rng rng(77);
  ASSERT_TRUE(restored_a.MergeFrom(restored_b, rng).ok());
  EXPECT_EQ(restored_a.active, snap_a.active + snap_b.active);
  EXPECT_EQ(restored_a.sample.size(), config.k);
  // Corrupting the occupancy/sample consistency must be rejected.
  std::string bad = blob_b;
  bad.resize(bad.size() - 24);  // drop one item
  EXPECT_FALSE(RestoreSnapshot(bad).ok());
}

}  // namespace
}  // namespace swsample
