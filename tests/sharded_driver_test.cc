// Copyright (c) swsample authors. Licensed under the MIT license.
//
// The sharded ingestion engine: option/shard validation, replica
// construction, item conservation under both partition modes and under
// backpressure, merged-sample uniformity against the ExactWindow oracle
// at 1/2/8 shards (the ISSUE acceptance sweep), and cross-shard estimator
// merges against single-shard ground truth. This binary is also the
// ThreadSanitizer workload for the engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "apps/estimator.h"
#include "apps/estimator_registry.h"
#include "apps/sink_spec.h"
#include "baseline/exact_window.h"
#include "core/api.h"
#include "core/registry.h"
#include "stats/tests.h"
#include "stream/arrival.h"
#include "stream/sharded_driver.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"

namespace swsample {
namespace {

// Sized so the kChunks exact-union alignment holds for 1/2/8 shards:
// shard windows kWindow/N are multiples of kChunk, and kItems is a
// multiple of kChunk * N.
constexpr uint64_t kItems = 16384;
constexpr uint64_t kWindow = 4096;
constexpr uint64_t kChunk = 64;

/// value == global index, so window membership is checkable on sight.
std::vector<Item> IdentityStream(uint64_t items) {
  std::vector<Item> out;
  out.reserve(items);
  for (uint64_t i = 0; i < items; ++i) {
    out.push_back(Item{i, i, static_cast<Timestamp>(i)});
  }
  return out;
}

ShardedStreamDriver::Options SmallChunkOptions(uint64_t threads,
                                               ShardPartition partition) {
  ShardedStreamDriver::Options options;
  options.threads = threads;
  options.chunk_items = kChunk;
  options.partition = partition;
  return options;
}

TEST(ShardedDriverTest, ValidatesOptionsAndShards) {
  const std::vector<Item> stream = IdentityStream(16);
  SamplerConfig config;
  config.window_n = 8;
  config.k = 2;
  auto sampler = CreateSampler("bop-seq-swr", config).ValueOrDie();
  std::vector<StreamSink*> sinks = {sampler.get()};

  ShardedStreamDriver::Options bad;
  bad.threads = 0;
  EXPECT_FALSE(ShardedStreamDriver(bad).Drive(stream, sinks).ok());
  bad = ShardedStreamDriver::Options{};
  bad.chunk_items = 0;
  EXPECT_FALSE(ShardedStreamDriver(bad).Drive(stream, sinks).ok());
  bad = ShardedStreamDriver::Options{};
  bad.queue_chunks = 0;
  EXPECT_FALSE(ShardedStreamDriver(bad).Drive(stream, sinks).ok());

  ShardedStreamDriver driver;
  EXPECT_FALSE(driver.Drive(stream, {}).ok());
  std::vector<StreamSink*> with_null = {sampler.get(), nullptr};
  EXPECT_FALSE(driver.Drive(stream, with_null).ok());
}

TEST(CreateShardedSinksTest, SplitsSequenceWindowsAndForksSeeds) {
  SamplerConfig config;
  config.window_n = 4096;
  config.k = 8;
  config.seed = 5;
  auto replicas = CreateShardedSinks(SamplerSinkSpec("bop-seq-swr", config), 4).ValueOrDie();
  ASSERT_EQ(replicas.size(), 4u);
  // Each replica carries a 1024-item window: after 2048 identical items
  // its snapshot occupancy is the shard window, not the global one.
  for (auto& replica : replicas) {
    for (uint64_t i = 0; i < 2048; ++i) {
      replica.sink->Observe(Item{i, i, static_cast<Timestamp>(i)});
    }
    ASSERT_NE(replica.sampler, nullptr);
    EXPECT_EQ(replica.sampler->Snapshot().ValueOrDie().active, 1024u);
  }

  EXPECT_FALSE(CreateShardedSinks(SamplerSinkSpec("no-such-sampler", config), 2).ok());
  config.window_n = 4098;  // not divisible by 4
  EXPECT_FALSE(CreateShardedSinks(SamplerSinkSpec("bop-seq-swr", config), 4).ok());
  config.window_n = 2;  // smaller than the shard count
  EXPECT_FALSE(CreateShardedSinks(SamplerSinkSpec("bop-seq-swr", config), 4).ok());

  // Timestamp windows pass through unsplit.
  config.window_t = 4098;
  auto ts = CreateShardedSinks(SamplerSinkSpec("exact-ts", config), 4).ValueOrDie();
  EXPECT_EQ(ts.size(), 4u);
}

TEST(ShardedDriverTest, ConservesItemsAcrossPartitionModes) {
  const std::vector<Item> stream = IdentityStream(kItems);
  for (ShardPartition partition :
       {ShardPartition::kChunks, ShardPartition::kKeyHash}) {
    SamplerConfig config;
    config.window_n = kWindow;
    config.k = 8;
    auto replicas =
        CreateShardedSinks(SamplerSinkSpec("bop-seq-swr", config), 4).ValueOrDie();
    auto sinks = SinkPointers(replicas);
    auto report = ShardedStreamDriver(SmallChunkOptions(4, partition))
                      .Drive(stream, sinks)
                      .ValueOrDie();
    EXPECT_EQ(report.total.items, kItems);
    ASSERT_EQ(report.shards.size(), 4u);
    uint64_t shard_sum = 0;
    for (const ShardReport& shard : report.shards) {
      EXPECT_GT(shard.items, 0u);
      EXPECT_GT(shard.batches, 0u);
      shard_sum += shard.items;
    }
    EXPECT_EQ(shard_sum, kItems);
    EXPECT_GT(report.total.memory_words, 0u);
  }
}

TEST(ShardedDriverTest, BackpressureCompletesAndConserves) {
  const std::vector<Item> stream = IdentityStream(kItems);
  SamplerConfig config;
  config.window_n = kWindow;
  config.k = 4;
  auto replicas = CreateShardedSinks(SamplerSinkSpec("bop-seq-swor", config), 8).ValueOrDie();
  auto sinks = SinkPointers(replicas);
  ShardedStreamDriver::Options options;
  options.threads = 3;  // shards > threads: workers own several replicas
  options.chunk_items = 16;
  options.queue_chunks = 1;  // producer blocks on every in-flight chunk
  auto report =
      ShardedStreamDriver(options).Drive(stream, sinks).ValueOrDie();
  EXPECT_EQ(report.total.items, kItems);
}

// The acceptance sweep: the merged sample over N in {1, 2, 8} shards must
// be uniform over the ExactWindow oracle's window contents.
class MergedUniformityTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(MergedUniformityTest, MergedSampleUniformOverExactWindow) {
  const auto [sampler_name, shards] = GetParam();
  // Smaller than the file-level sizes so re-driving per trial stays cheap
  // (the paper samplers' per-call guarantee is over the INGEST
  // randomness, so each trial needs a fresh seeded drive); alignment for
  // 8 shards still holds: shard windows 128 = 4 chunks of 32, stream
  // 4096 = 128 chunks.
  constexpr uint64_t kUItems = 4096;
  constexpr uint64_t kUWindow = 1024;
  constexpr uint64_t kK = 16;
  constexpr uint64_t kTrials = 150;
  const std::vector<Item> stream = IdentityStream(kUItems);

  // Ground truth: the oracle's window after the same stream.
  auto oracle =
      ExactWindow::CreateSequence(kUWindow, kK, /*wr=*/true, 1).ValueOrDie();
  for (const Item& item : stream) oracle->Observe(item);
  ASSERT_EQ(oracle->size(), kUWindow);
  const uint64_t window_start = kUItems - kUWindow;

  ShardedStreamDriver::Options options =
      SmallChunkOptions(shards, ShardPartition::kChunks);
  options.chunk_items = 32;
  std::vector<uint64_t> counts(16, 0);  // 16 cells across the window
  for (uint64_t trial = 0; trial < kTrials; ++trial) {
    SamplerConfig config;
    config.window_n = kUWindow;
    config.k = kK;
    config.seed = trial * 31 + 7;
    auto replicas =
        CreateShardedSinks(SamplerSinkSpec(sampler_name, config), shards).ValueOrDie();
    auto sinks = SinkPointers(replicas);
    auto report =
        ShardedStreamDriver(options).Drive(stream, sinks).ValueOrDie();
    ASSERT_EQ(report.total.items, kUItems);
    auto merged =
        MergedSnapshot(SamplerPointers(replicas).ValueOrDie(), trial).ValueOrDie();
    EXPECT_EQ(merged.active, kUWindow);
    EXPECT_EQ(merged.sample.size(), kK);
    for (const Item& item : merged.sample) {
      // Sampled values must be exactly the oracle window's members.
      ASSERT_GE(item.value, window_start);
      ASSERT_LT(item.value, kUItems);
      ++counts[(item.value - window_start) / (kUWindow / 16)];
    }
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4)
      << sampler_name << " over " << shards
      << " shards: chi2=" << result.statistic << " p=" << result.p_value;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergedUniformityTest,
    ::testing::Combine(::testing::Values("bop-seq-swr", "bop-seq-swor",
                                         "exact-seq"),
                       ::testing::Values(1u, 2u, 8u)));

// window-count over sequence shards is exact: shard counts sum to the
// global window occupancy under chunk partitioning.
TEST(ShardedEstimatorTest, WindowCountSumsExactly) {
  const std::vector<Item> stream = IdentityStream(kItems);
  EstimatorConfig config;
  config.substrate = "bop-seq-single";
  config.window_n = kWindow;
  config.r = 1;
  auto replicas =
      CreateShardedSinks(EstimatorSinkSpec("window-count", config), 4).ValueOrDie();
  auto sinks = SinkPointers(replicas);
  auto report =
      ShardedStreamDriver(SmallChunkOptions(4, ShardPartition::kChunks))
          .Drive(stream, sinks)
          .ValueOrDie();
  ASSERT_EQ(report.total.items, kItems);
  auto merged = MergedEstimate(EstimatorPointers(replicas).ValueOrDie()).ValueOrDie();
  EXPECT_DOUBLE_EQ(merged.value, static_cast<double>(kWindow));
  EXPECT_DOUBLE_EQ(merged.window_size, static_cast<double>(kWindow));
}

// ams-fk / ccm-entropy over the exact-ts oracle substrate with key-hash
// partitioning: shard actives partition the global active set exactly, so
// the merged estimates must agree with the single-shard estimator within
// sampling tolerance (both still draw r random positions per query).
TEST(ShardedEstimatorTest, KeyedMergesMatchSingleShardEstimates) {
  // 64 keys uniformly; true window F2 and H are computed from the tail.
  Rng rng(404);
  std::vector<Item> stream;
  stream.reserve(kItems);
  for (uint64_t i = 0; i < kItems; ++i) {
    stream.push_back(
        Item{rng.UniformIndex(64), i, static_cast<Timestamp>(i)});
  }
  std::map<uint64_t, uint64_t> tail_freq;
  for (uint64_t i = kItems - kWindow; i < kItems; ++i) {
    ++tail_freq[stream[i].value];
  }
  double true_f2 = 0.0;
  double true_h = 0.0;
  for (const auto& [value, count] : tail_freq) {
    const double p = static_cast<double>(count) / kWindow;
    true_f2 += static_cast<double>(count) * static_cast<double>(count);
    true_h -= p * std::log2(p);
  }

  for (const char* name : {"ams-fk", "ccm-entropy"}) {
    EstimatorConfig config;
    config.substrate = "exact-ts";
    config.window_t = kWindow;  // ts == index, so last kWindow items active
    config.r = 512;
    config.seed = 17;
    auto replicas = CreateShardedSinks(EstimatorSinkSpec(name, config), 4).ValueOrDie();
    auto sinks = SinkPointers(replicas);
    auto report =
        ShardedStreamDriver(SmallChunkOptions(4, ShardPartition::kKeyHash))
            .Drive(stream, sinks)
            .ValueOrDie();
    ASSERT_EQ(report.total.items, kItems);
    auto merged = MergedEstimate(EstimatorPointers(replicas).ValueOrDie()).ValueOrDie();
    // The shard actives must partition the global active set exactly.
    EXPECT_DOUBLE_EQ(merged.window_size, static_cast<double>(kWindow))
        << name;
    const double truth = std::string_view(name) == "ams-fk" ? true_f2
                                                            : true_h;
    EXPECT_NEAR(merged.value, truth, 0.15 * truth) << name;
  }
}

// biased-mean over a constant-value stream: every shard mean is the
// constant, so the weighted-mean merge must reproduce it exactly.
TEST(ShardedEstimatorTest, ConstantMeanSurvivesMergeExactly) {
  std::vector<Item> stream;
  stream.reserve(kItems);
  for (uint64_t i = 0; i < kItems; ++i) {
    stream.push_back(Item{42, i, static_cast<Timestamp>(i)});
  }
  EstimatorConfig config;
  config.substrate = "bop-seq-swr";
  config.window_n = kWindow;
  config.r = 8;
  auto replicas =
      CreateShardedSinks(EstimatorSinkSpec("biased-mean", config), 4).ValueOrDie();
  auto sinks = SinkPointers(replicas);
  ASSERT_TRUE(ShardedStreamDriver(SmallChunkOptions(4, ShardPartition::kChunks))
                  .Drive(stream, sinks)
                  .ok());
  auto merged = MergedEstimate(EstimatorPointers(replicas).ValueOrDie()).ValueOrDie();
  EXPECT_DOUBLE_EQ(merged.value, 42.0);
}

TEST(ShardedEstimatorTest, MergeCapabilityMatrix) {
  const std::map<std::string, EstimateMergeKind> expected = {
      {"ams-fk", EstimateMergeKind::kSum},
      {"ccm-entropy", EstimateMergeKind::kEntropy},
      {"window-count", EstimateMergeKind::kCount},
      {"biased-mean", EstimateMergeKind::kWeightedMean},
      {"dkw-quantile", EstimateMergeKind::kNone},
      {"buriol-triangles", EstimateMergeKind::kNone},
  };
  for (const EstimatorSpec& spec : RegisteredEstimators()) {
    EstimatorConfig config;
    config.window_n = 256;
    config.window_t = 256;
    config.r = spec.name == std::string_view("dkw-quantile") ? 8 : 4;
    config.num_vertices = 16;
    auto estimator = CreateEstimator(spec.name, config).ValueOrDie();
    ASSERT_TRUE(expected.count(spec.name)) << spec.name;
    EXPECT_EQ(estimator->merge_kind(), expected.at(spec.name)) << spec.name;
  }
}

// Timestamp windows with bursts and quiet steps through DriveSynthetic:
// merged DGIM counts stay within the (1 +/- eps) envelope of the exact
// oracle count, and AdvanceTime broadcasts keep expiry moving on empty
// steps.
TEST(ShardedDriverTest, SyntheticTimestampCountsTrackExact) {
  auto make_stream = [] {
    return SyntheticStream(UniformValues::Create(1 << 16).ValueOrDie(),
                           PoissonBurstArrivals::Create(4.0).ValueOrDie(),
                           /*seed=*/77);
  };
  constexpr uint64_t kSteps = 4000;
  constexpr Timestamp kT0 = 500;

  auto exact = make_stream();
  auto oracle = ExactWindow::CreateTimestamp(kT0, 1, true, 1).ValueOrDie();
  for (uint64_t step = 0; step < kSteps; ++step) {
    const std::vector<Item>& burst = exact.Step();
    if (burst.empty()) {
      oracle->AdvanceTime(exact.now());
    } else {
      for (const Item& item : burst) oracle->Observe(item);
    }
  }

  EstimatorConfig config;
  config.substrate = "bop-ts-single";
  config.window_t = kT0;
  config.r = 1;
  config.count_eps = 0.05;
  auto replicas =
      CreateShardedSinks(EstimatorSinkSpec("window-count", config), 4).ValueOrDie();
  auto sinks = SinkPointers(replicas);
  auto stream = make_stream();
  auto report =
      ShardedStreamDriver(SmallChunkOptions(4, ShardPartition::kKeyHash))
          .DriveSynthetic(stream, kSteps, sinks)
          .ValueOrDie();
  EXPECT_GT(report.total.items, 0u);
  EXPECT_GT(report.total.empty_steps, 0u);

  auto merged = MergedEstimate(EstimatorPointers(replicas).ValueOrDie()).ValueOrDie();
  const double exact_count = static_cast<double>(oracle->size());
  EXPECT_NEAR(merged.value, exact_count, 0.05 * exact_count + 4.0);
}

TEST(ShardedDriverTest, DriveFileParsesAndPropagatesErrors) {
  const std::string good_path = ::testing::TempDir() + "/sharded_good.txt";
  const std::string bad_path = ::testing::TempDir() + "/sharded_bad.txt";
  {
    std::FILE* f = std::fopen(good_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 1000; ++i) {
      std::fprintf(f, "%d\n", i);
      if (i % 100 == 0) std::fprintf(f, "\n");  // blank lines are skipped
    }
    std::fclose(f);
  }
  {
    std::FILE* f = std::fopen(bad_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "1\n2\nnot-a-number\n4\n");
    std::fclose(f);
  }

  SamplerConfig config;
  config.window_n = 512;
  config.k = 4;
  auto replicas = CreateShardedSinks(SamplerSinkSpec("bop-seq-swr", config), 2).ValueOrDie();
  auto sinks = SinkPointers(replicas);
  ShardedStreamDriver driver(SmallChunkOptions(2, ShardPartition::kChunks));
  auto good = driver.DriveFile(good_path, /*timestamped=*/false, sinks);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().total.items, 1000u);

  auto bad = driver.DriveFile(bad_path, /*timestamped=*/false, sinks);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find(":3"), std::string::npos)
      << bad.status().ToString();
  EXPECT_NE(bad.status().message().find("malformed event line"),
            std::string::npos);

  EXPECT_FALSE(
      driver.DriveFile("/no/such/file", false, sinks).ok());
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

}  // namespace
}  // namespace swsample
