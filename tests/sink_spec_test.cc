// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the unified SinkSpec construction API (apps/sink_spec.h):
// (1) the spec-string grammar parses and FormatSinkSpec round-trips;
// (2) CreateSink constructs every registered sampler AND estimator name
// through the one factory; (3) ShardSinkSpec is the single shard
// derivation (window split, seed fork, bias-level split, divisibility
// errors); (4) SaveSink/RestoreSink round-trips both kinds bit-exactly;
// (5) the typed pointer adaptors reject mixed/mismatched vectors.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/sink_spec.h"
#include "core/registry.h"
#include "util/rng.h"

namespace swsample {
namespace {

Item MakeItem(uint64_t i) {
  return Item{i % 257, i, static_cast<Timestamp>(i)};
}

TEST(SinkSpecParseTest, ParsesSamplerSpecWithFields) {
  auto spec =
      ParseSinkSpec("bop-seq-swor,n=65536,k=64,seed=7").ValueOrDie();
  EXPECT_EQ(spec.name, "bop-seq-swor");
  EXPECT_EQ(spec.substrate, "");
  EXPECT_EQ(spec.window_n, 65536u);
  EXPECT_EQ(spec.k, 64u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(SinkKindOf(spec.name).ValueOrDie(), SinkKind::kSampler);
  EXPECT_EQ(SinkWindowModel(spec).ValueOrDie(), WindowModel::kSequence);
}

TEST(SinkSpecParseTest, ParsesEstimatorSpecWithSubstrate) {
  auto spec =
      ParseSinkSpec("ams-fk@bop-ts-swr,t=1000,r=256,moment=3").ValueOrDie();
  EXPECT_EQ(spec.name, "ams-fk");
  EXPECT_EQ(spec.substrate, "bop-ts-swr");
  EXPECT_EQ(spec.window_t, 1000);
  EXPECT_EQ(spec.r, 256u);
  EXPECT_EQ(spec.moment, 3u);
  EXPECT_EQ(SinkKindOf(spec.name).ValueOrDie(), SinkKind::kEstimator);
  EXPECT_EQ(SinkWindowModel(spec).ValueOrDie(), WindowModel::kTimestamp);
}

TEST(SinkSpecParseTest, ParsesBiasLevelsAndFloatKeys) {
  auto spec =
      ParseSinkSpec("biased-mean,t=4096,bias=1024:0.5+4096:0.5,eps=0.1,q=0.9")
          .ValueOrDie();
  ASSERT_EQ(spec.bias_levels.size(), 2u);
  EXPECT_EQ(spec.bias_levels[0].window, 1024);
  EXPECT_DOUBLE_EQ(spec.bias_levels[0].weight, 0.5);
  EXPECT_EQ(spec.bias_levels[1].window, 4096);
  EXPECT_DOUBLE_EQ(spec.count_eps, 0.1);
  EXPECT_DOUBLE_EQ(spec.q, 0.9);
}

TEST(SinkSpecParseTest, FormatRoundTripsThroughParse) {
  const char* inputs[] = {
      "bop-seq-swor,n=65536,k=64,seed=7",
      "bop-ts-single,t=100",
      "ams-fk@bop-ts-swr,t=1000,r=256,moment=3",
      "biased-mean,t=4096,bias=1024:0.25+4096:0.75",
      "exact-seq,n=32,k=4,wr=0",
      "dkw-quantile,t=500,r=128,q=0.95",
  };
  for (const char* input : inputs) {
    auto spec = ParseSinkSpec(input).ValueOrDie();
    const std::string canonical = FormatSinkSpec(spec);
    auto reparsed = ParseSinkSpec(canonical);
    ASSERT_TRUE(reparsed.ok())
        << input << " -> " << canonical << ": "
        << reparsed.status().ToString();
    EXPECT_EQ(FormatSinkSpec(reparsed.value()), canonical) << input;
  }
}

TEST(SinkSpecParseTest, RejectsBadInput) {
  // Unknown name lists the registered set.
  auto unknown = ParseSinkSpec("no-such-sink,n=16");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("bop-seq-swor"),
            std::string::npos);
  // Samplers take no substrate.
  EXPECT_FALSE(ParseSinkSpec("bop-seq-swor@exact-seq,n=16").ok());
  // Unknown key, malformed number, malformed bias level.
  EXPECT_FALSE(ParseSinkSpec("bop-seq-swor,n=16,banana=1").ok());
  EXPECT_FALSE(ParseSinkSpec("bop-seq-swor,n=16x").ok());
  EXPECT_FALSE(ParseSinkSpec("biased-mean,t=64,bias=64").ok());
  EXPECT_FALSE(ParseSinkSpec("").ok());
}

TEST(SinkSpecFactoryTest, ConstructsEveryRegisteredSampler) {
  for (const SamplerSpec& reg : RegisteredSamplers()) {
    SinkSpec spec;
    spec.name = reg.name;
    spec.window_n = 256;
    spec.window_t = 256;
    spec.k = reg.single_sample ? 1 : 4;
    spec.seed = 11;
    auto sink = CreateSink(spec);
    ASSERT_TRUE(sink.ok()) << reg.name << ": " << sink.status().ToString();
    ASSERT_NE(sink.value().sampler, nullptr) << reg.name;
    EXPECT_EQ(sink.value().estimator, nullptr) << reg.name;
    EXPECT_EQ(sink.value().kind(), SinkKind::kSampler);
    EXPECT_STREQ(sink.value().sink->name(), reg.name);
  }
}

TEST(SinkSpecFactoryTest, ConstructsEveryRegisteredEstimator) {
  for (const EstimatorSpec& reg : RegisteredEstimators()) {
    SinkSpec spec;
    spec.name = reg.name;
    spec.window_n = 256;
    spec.window_t = 256;
    spec.r = 8;
    spec.num_vertices = 32;
    spec.seed = 11;
    auto sink = CreateSink(spec);
    ASSERT_TRUE(sink.ok()) << reg.name << ": " << sink.status().ToString();
    ASSERT_NE(sink.value().estimator, nullptr) << reg.name;
    EXPECT_EQ(sink.value().sampler, nullptr) << reg.name;
    EXPECT_EQ(sink.value().kind(), SinkKind::kEstimator);
    EXPECT_STREQ(sink.value().sink->name(), reg.name);
  }
}

TEST(SinkSpecFactoryTest, RejectsIncompatibleSubstrate) {
  SinkSpec spec;
  spec.name = "buriol-triangles";
  spec.substrate = "bdm-chain";  // not in its substrate list
  spec.window_n = 256;
  spec.r = 8;
  spec.num_vertices = 32;
  EXPECT_FALSE(CreateSink(spec).ok());
}

TEST(SinkSpecShardTest, SplitsSequenceWindowsAndForksSeeds) {
  SinkSpec spec;
  spec.name = "bop-seq-swr";
  spec.window_n = 4096;
  spec.k = 8;
  spec.seed = 5;

  auto shard2 = ShardSinkSpec(spec, 2, 4).ValueOrDie();
  EXPECT_EQ(shard2.window_n, 1024u);
  EXPECT_EQ(shard2.seed, Rng::ForkSeed(5, 2));
  EXPECT_EQ(shard2.name, spec.name);

  // Indivisible and too-small windows are rejected.
  spec.window_n = 4098;
  EXPECT_FALSE(ShardSinkSpec(spec, 0, 4).ok());
  spec.window_n = 2;
  EXPECT_FALSE(ShardSinkSpec(spec, 0, 4).ok());
}

TEST(SinkSpecShardTest, TimestampWindowsPassThroughUnchanged) {
  SinkSpec spec;
  spec.name = "ams-fk";
  spec.substrate = "bop-ts-single";
  spec.window_t = 1000;
  spec.r = 16;
  spec.seed = 9;
  auto shard = ShardSinkSpec(spec, 3, 4).ValueOrDie();
  EXPECT_EQ(shard.window_t, 1000);
  EXPECT_EQ(shard.seed, Rng::ForkSeed(9, 3));
}

TEST(SinkSpecShardTest, SplitsBiasLevelWindows) {
  auto spec =
      ParseSinkSpec("biased-mean,n=4096,bias=1024:0.5+4096:0.5").ValueOrDie();
  auto shard = ShardSinkSpec(spec, 1, 4).ValueOrDie();
  ASSERT_EQ(shard.bias_levels.size(), 2u);
  EXPECT_EQ(shard.bias_levels[0].window, 256);
  EXPECT_EQ(shard.bias_levels[1].window, 1024);
  // A bias window that does not divide is rejected.
  spec.bias_levels[0].window = 1023;
  EXPECT_FALSE(ShardSinkSpec(spec, 1, 4).ok());
}

TEST(SinkSpecShardTest, CreateShardedSinksBuildsReplicas) {
  auto spec = ParseSinkSpec("bop-seq-swor,n=4096,k=8,seed=5").ValueOrDie();
  auto replicas = CreateShardedSinks(spec, 4).ValueOrDie();
  ASSERT_EQ(replicas.size(), 4u);
  auto sinks = SinkPointers(replicas);
  EXPECT_EQ(sinks.size(), 4u);
  auto samplers = SamplerPointers(replicas).ValueOrDie();
  EXPECT_EQ(samplers.size(), 4u);
  // Wrong-kind typed adaptor is a checked error, not UB.
  EXPECT_FALSE(EstimatorPointers(replicas).ok());
}

TEST(SinkSpecPersistTest, SamplerSaveRestoreRoundTripsBitExactly) {
  auto spec = ParseSinkSpec("bop-seq-swor,n=64,k=4,seed=21").ValueOrDie();
  auto original = CreateSink(spec).ValueOrDie();
  for (uint64_t i = 0; i < 500; ++i) original.sink->Observe(MakeItem(i));

  auto blob = SaveSink(*original.sink, spec).ValueOrDie();
  auto restored = RestoreSink(blob).ValueOrDie();
  ASSERT_NE(restored.sink.sampler, nullptr);
  EXPECT_EQ(FormatSinkSpec(restored.spec), FormatSinkSpec(spec));

  // Every subsequent draw agrees: RNG state round-tripped.
  for (int q = 0; q < 20; ++q) {
    auto a = original.sampler->Sample();
    auto b = restored.sink.sampler->Sample();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
    }
  }
}

TEST(SinkSpecPersistTest, EstimatorSaveRestoreRoundTripsBitExactly) {
  auto spec =
      ParseSinkSpec("ams-fk@bop-ts-single,t=100,r=16,seed=3").ValueOrDie();
  auto original = CreateSink(spec).ValueOrDie();
  for (uint64_t i = 0; i < 400; ++i) original.sink->Observe(MakeItem(i));

  auto blob = SaveSink(*original.sink, spec).ValueOrDie();
  auto restored = RestoreSink(blob).ValueOrDie();
  ASSERT_NE(restored.sink.estimator, nullptr);

  EstimateReport a = original.estimator->Estimate();
  EstimateReport b = restored.sink.estimator->Estimate();
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.window_size, b.window_size);
  EXPECT_EQ(a.support, b.support);

  // Restore of garbage is an error, not a crash.
  EXPECT_FALSE(RestoreSink("definitely not an envelope").ok());
}

TEST(SinkSpecListTest, FormatSinkListMentionsEveryRegisteredName) {
  const std::string list = FormatSinkList();
  for (const SamplerSpec& reg : RegisteredSamplers()) {
    EXPECT_NE(list.find(reg.name), std::string::npos) << reg.name;
  }
  for (const EstimatorSpec& reg : RegisteredEstimators()) {
    EXPECT_NE(list.find(reg.name), std::string::npos) << reg.name;
  }
  const std::string names = RegisteredSinkNames();
  EXPECT_NE(names.find("bop-seq-swor"), std::string::npos);
  EXPECT_NE(names.find("ams-fk"), std::string::npos);
}

}  // namespace
}  // namespace swsample
