// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Shared distributional assertions for the test suite.
//
// Every uniformity / equivalence check in the suite reduces to one of two
// shapes, previously re-implemented (with a hardcoded chi^2 quantile) in
// ts_batch_test.cc, merge_test.cc, and registry_test.cc:
//
//  * IsUniform(counts, seed): one-sample chi-square of observed cell counts
//    against the uniform expectation;
//  * SameDistribution(a, b, seed): two-sample chi-square on the
//    (cell, path) contingency table with equal column margins — the
//    standard check that two sampling paths (batched vs item-at-a-time,
//    merged vs direct) draw from the same distribution.
//
// Both return ::testing::AssertionResult carrying the failing SEED and the
// test STATISTIC, so a flaky-looking failure in CI is reproducible from
// the log line alone. Significance is 1e-4 per check by default (the
// suite-wide convention: a few hundred checks keep the false-positive rate
// per run well under 5%). P-values come from stats/special.h's regularized
// gamma tail, not from hardcoded quantiles, so cell counts can vary freely.

#ifndef SWSAMPLE_TESTS_STAT_CHECK_H_
#define SWSAMPLE_TESTS_STAT_CHECK_H_

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "stats/special.h"
#include "stats/tests.h"

namespace swsample {

/// One-sample uniformity: EXPECT_TRUE(IsUniform(counts, seed)). Passes when
/// the chi-square p-value exceeds `p_min`.
inline ::testing::AssertionResult IsUniform(
    const std::vector<uint64_t>& counts, uint64_t seed, double p_min = 1e-4) {
  const ChiSquareResult result = ChiSquareUniform(counts);
  if (result.p_value > p_min) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "not uniform: chi2=" << result.statistic << " df=" << result.df
         << " p=" << result.p_value << " (threshold " << p_min
         << "), reproduce with seed=" << seed;
}

/// Two-sample chi-square statistic on the (cell, path) contingency table;
/// requires equal total counts in `a` and `b` (equal trial counts), which
/// makes the per-cell expectation (a_i + b_i) / 2.
inline double TwoSampleChiSquare(const std::vector<uint64_t>& a,
                                 const std::vector<uint64_t>& b) {
  double stat = 0.0;
  for (uint64_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(a[i]);
    const double y = static_cast<double>(b[i]);
    if (x + y == 0) continue;
    stat += (x - y) * (x - y) / (x + y);
  }
  return stat;
}

/// Two-sample equivalence: EXPECT_TRUE(SameDistribution(a, b, seed)).
/// Degrees of freedom = occupied cells - 1 (cells empty in both samples
/// carry no information and are excluded, matching TwoSampleChiSquare).
inline ::testing::AssertionResult SameDistribution(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b,
    uint64_t seed, double p_min = 1e-4) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "cell count mismatch: " << a.size() << " vs " << b.size();
  }
  uint64_t occupied = 0;
  for (uint64_t i = 0; i < a.size(); ++i) {
    if (a[i] + b[i] > 0) ++occupied;
  }
  if (occupied < 2) return ::testing::AssertionSuccess();
  const double stat = TwoSampleChiSquare(a, b);
  const double p = ChiSquareTail(stat, static_cast<double>(occupied - 1));
  if (p > p_min) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "distributions differ: chi2=" << stat << " df=" << occupied - 1
         << " p=" << p << " (threshold " << p_min
         << "), reproduce with seed=" << seed;
}

}  // namespace swsample

#endif  // SWSAMPLE_TESTS_STAT_CHECK_H_
