// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Unit tests for the statistics toolkit: special functions, goodness-of-fit
// tests, summaries, exact window aggregates.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "stats/exact.h"
#include "stats/special.h"
#include "stats/summary.h"
#include "stats/tests.h"
#include "util/rng.h"

namespace swsample {
namespace {

TEST(SpecialTest, GammaQKnownValues) {
  // Q(1, x) = e^-x.
  EXPECT_NEAR(RegularizedGammaQ(1.0, 0.5), std::exp(-0.5), 1e-10);
  EXPECT_NEAR(RegularizedGammaQ(1.0, 3.0), std::exp(-3.0), 1e-10);
  // Q(a, 0) = 1.
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.5, 0.0), 1.0);
  // Chi-square df=2: tail at x is e^{-x/2}.
  EXPECT_NEAR(ChiSquareTail(4.0, 2.0), std::exp(-2.0), 1e-10);
}

TEST(SpecialTest, ChiSquareTailTableValues) {
  // Classic table: P(chi2_1 > 3.841) ~ 0.05, P(chi2_10 > 18.307) ~ 0.05.
  EXPECT_NEAR(ChiSquareTail(3.841, 1.0), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquareTail(18.307, 10.0), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquareTail(23.209, 10.0), 0.01, 1e-3);
}

TEST(SpecialTest, ChiSquareTailMonotone) {
  for (double df : {1.0, 5.0, 20.0}) {
    double prev = 1.0;
    for (double x = 0.0; x < 50.0; x += 0.5) {
      double p = ChiSquareTail(x, df);
      EXPECT_LE(p, prev + 1e-12);
      prev = p;
    }
  }
}

TEST(SpecialTest, KolmogorovTailEdges) {
  EXPECT_DOUBLE_EQ(KolmogorovTail(0.0), 1.0);
  EXPECT_LT(KolmogorovTail(2.0), 0.001);
  // Known value: P(sqrt(n) D > 1.36) ~ 0.05.
  EXPECT_NEAR(KolmogorovTail(1.36), 0.05, 5e-3);
}

TEST(ChiSquareTest, UniformDataPasses) {
  std::vector<uint64_t> counts = {100, 98, 103, 99, 101, 99};
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 0.5);
  EXPECT_EQ(result.df, 5.0);
}

TEST(ChiSquareTest, SkewedDataFails) {
  std::vector<uint64_t> counts = {500, 100, 100, 100, 100, 100};
  auto result = ChiSquareUniform(counts);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquareTest, ExpectedProbsRespected) {
  // Counts drawn to match a 2:1:1 distribution.
  std::vector<uint64_t> counts = {2000, 1010, 990};
  std::vector<double> probs = {0.5, 0.25, 0.25};
  auto result = ChiSquareExpected(counts, probs);
  EXPECT_GT(result.p_value, 0.1);
  // Against uniform they should fail decisively.
  auto uniform = ChiSquareUniform(counts);
  EXPECT_LT(uniform.p_value, 1e-6);
}

TEST(KsTest, UniformSamplesPass) {
  Rng rng(1);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.Uniform01();
  EXPECT_GT(KsUniform(std::move(xs)).p_value, 1e-4);
}

TEST(KsTest, SquashedSamplesFail) {
  Rng rng(2);
  std::vector<double> xs(5000);
  for (auto& x : xs) {
    double u = rng.Uniform01();
    x = u * u;  // biased toward 0
  }
  EXPECT_LT(KsUniform(std::move(xs)).p_value, 1e-6);
}

TEST(PearsonTest, IndependentNearZero) {
  Rng rng(3);
  std::vector<double> xs(20000), ys(20000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Uniform01();
    ys[i] = rng.Uniform01();
  }
  EXPECT_LT(std::fabs(PearsonCorrelation(xs, ys)), 0.03);
}

TEST(PearsonTest, PerfectCorrelationIsOne) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesGivesZero) {
  std::vector<double> xs = {1, 1, 1};
  std::vector<double> ys = {2, 3, 4};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, ys), 0.0);
}

TEST(RunningSummaryTest, MomentsCorrect) {
  RunningSummary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(PercentileTest, NearestRank) {
  std::vector<double> xs = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 5.0);
}

TEST(ExactTest, Histogram) {
  auto hist = ExactHistogram({1, 2, 2, 3, 3, 3});
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(hist[3], 3u);
}

TEST(ExactTest, FrequencyMoments) {
  std::vector<uint64_t> values = {1, 2, 2, 3, 3, 3};
  EXPECT_DOUBLE_EQ(ExactFrequencyMoment(values, 1), 6.0);       // stream size
  EXPECT_DOUBLE_EQ(ExactFrequencyMoment(values, 2), 1 + 4 + 9);  // 14
  EXPECT_DOUBLE_EQ(ExactFrequencyMoment(values, 3), 1 + 8 + 27);
}

TEST(ExactTest, EntropyUniformAndDegenerate) {
  EXPECT_NEAR(ExactEntropy({0, 1, 2, 3}), 2.0, 1e-12);  // 4 distinct
  EXPECT_NEAR(ExactEntropy({7, 7, 7, 7}), 0.0, 1e-12);  // constant
  EXPECT_DOUBLE_EQ(ExactEntropy(std::vector<uint64_t>{}), 0.0);
  // Mixed case: {a,a,b} -> H = -(2/3)log2(2/3) - (1/3)log2(1/3).
  double h = -(2.0 / 3) * std::log2(2.0 / 3) - (1.0 / 3) * std::log2(1.0 / 3);
  EXPECT_NEAR(ExactEntropy({1, 1, 2}), h, 1e-12);
}

}  // namespace
}  // namespace swsample
