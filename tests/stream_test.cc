// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Unit tests for the stream substrate: value generators, arrival processes
// and the composed SyntheticStream.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "stream/arrival.h"
#include "stream/driver.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"
#include "util/rng.h"
#include "util/serial.h"

namespace swsample {
namespace {

TEST(UniformValuesTest, RejectsEmptyDomain) {
  EXPECT_FALSE(UniformValues::Create(0).ok());
}

TEST(UniformValuesTest, StaysInDomain) {
  auto gen = UniformValues::Create(10).ValueOrDie();
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(gen->Next(rng), 10u);
}

TEST(UniformValuesTest, CoversDomain) {
  auto gen = UniformValues::Create(8).ValueOrDie();
  Rng rng(2);
  std::vector<uint64_t> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[gen->Next(rng)];
  for (uint64_t c : counts) EXPECT_GT(c, 800u);
}

TEST(ZipfValuesTest, RejectsBadParams) {
  EXPECT_FALSE(ZipfValues::Create(0, 1.0).ok());
  EXPECT_FALSE(ZipfValues::Create(10, -1.0).ok());
}

TEST(ZipfValuesTest, SkewFavorsSmallValues) {
  auto gen = ZipfValues::Create(100, 1.2).ValueOrDie();
  Rng rng(3);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[gen->Next(rng)];
  // Head value must dominate the tail value heavily under alpha=1.2.
  EXPECT_GT(counts[0], 10 * counts[50] / 2);
  EXPECT_GT(counts[0], counts[1]);
}

TEST(ZipfValuesTest, AlphaZeroIsUniform) {
  auto gen = ZipfValues::Create(16, 0.0).ValueOrDie();
  Rng rng(4);
  std::vector<uint64_t> counts(16, 0);
  for (int i = 0; i < 64000; ++i) ++counts[gen->Next(rng)];
  for (uint64_t c : counts) {
    EXPECT_GT(c, 3000u);
    EXPECT_LT(c, 5000u);
  }
}

TEST(ZipfValuesTest, FrequencyMatchesTheory) {
  const double alpha = 1.0;
  auto gen = ZipfValues::Create(50, alpha).ValueOrDie();
  Rng rng(5);
  const int trials = 200000;
  uint64_t head = 0;
  for (int i = 0; i < trials; ++i) head += (gen->Next(rng) == 0);
  double harmonic = 0.0;
  for (int i = 1; i <= 50; ++i) harmonic += 1.0 / i;
  EXPECT_NEAR(static_cast<double>(head) / trials, 1.0 / harmonic, 0.01);
}

TEST(SequentialValuesTest, RoundRobin) {
  auto gen = SequentialValues::Create(3).ValueOrDie();
  Rng rng(6);
  std::vector<uint64_t> seen;
  for (int i = 0; i < 7; ++i) seen.push_back(gen->Next(rng));
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(ConstantRateArrivalsTest, ExactCount) {
  ConstantRateArrivals arrivals(5);
  Rng rng(7);
  for (Timestamp t = 0; t < 100; ++t) EXPECT_EQ(arrivals.CountAt(t, rng), 5u);
}

TEST(PoissonBurstArrivalsTest, RejectsBadLambda) {
  EXPECT_FALSE(PoissonBurstArrivals::Create(0.0).ok());
  EXPECT_FALSE(PoissonBurstArrivals::Create(-3.0).ok());
}

TEST(PoissonBurstArrivalsTest, MeanMatchesLambdaSmall) {
  auto arrivals = PoissonBurstArrivals::Create(4.0).ValueOrDie();
  Rng rng(8);
  uint64_t total = 0;
  const int steps = 50000;
  for (int t = 0; t < steps; ++t) total += arrivals->CountAt(t, rng);
  EXPECT_NEAR(static_cast<double>(total) / steps, 4.0, 0.1);
}

TEST(PoissonBurstArrivalsTest, MeanMatchesLambdaLarge) {
  auto arrivals = PoissonBurstArrivals::Create(100.0).ValueOrDie();
  Rng rng(9);
  uint64_t total = 0;
  const int steps = 20000;
  for (int t = 0; t < steps; ++t) total += arrivals->CountAt(t, rng);
  EXPECT_NEAR(static_cast<double>(total) / steps, 100.0, 1.0);
}

TEST(DoublingBurstArrivalsTest, RejectsBadParams) {
  EXPECT_FALSE(DoublingBurstArrivals::Create(0, 10).ok());
  EXPECT_FALSE(DoublingBurstArrivals::Create(31, 10).ok());
  EXPECT_FALSE(DoublingBurstArrivals::Create(5, 0).ok());
}

TEST(DoublingBurstArrivalsTest, DoublingShape) {
  auto arrivals =
      DoublingBurstArrivals::Create(/*t0=*/4, /*max_burst=*/1 << 20)
          .ValueOrDie();
  Rng rng(10);
  // 2^(2*4 - t) for t <= 8, then 1.
  EXPECT_EQ(arrivals->CountAt(0, rng), 256u);
  EXPECT_EQ(arrivals->CountAt(1, rng), 128u);
  EXPECT_EQ(arrivals->CountAt(8, rng), 1u);
  EXPECT_EQ(arrivals->CountAt(9, rng), 1u);
  EXPECT_EQ(arrivals->CountAt(100, rng), 1u);
}

TEST(DoublingBurstArrivalsTest, CapsAtMaxBurst) {
  auto arrivals =
      DoublingBurstArrivals::Create(/*t0=*/10, /*max_burst=*/64).ValueOrDie();
  Rng rng(11);
  EXPECT_EQ(arrivals->CountAt(0, rng), 64u);   // 2^20 capped
  EXPECT_EQ(arrivals->CountAt(14, rng), 64u);  // 2^6 == 64
  EXPECT_EQ(arrivals->CountAt(15, rng), 32u);
}

TEST(SyntheticStreamTest, IndicesAndTimestampsConsistent) {
  auto stream = SyntheticStream(
      UniformValues::Create(100).ValueOrDie(),
      std::make_unique<ConstantRateArrivals>(3), /*seed=*/12);
  StreamIndex expect_index = 0;
  for (Timestamp t = 0; t < 50; ++t) {
    const auto& burst = stream.Step();
    EXPECT_EQ(stream.now(), t);
    ASSERT_EQ(burst.size(), 3u);
    for (const Item& item : burst) {
      EXPECT_EQ(item.index, expect_index++);
      EXPECT_EQ(item.timestamp, t);
      EXPECT_LT(item.value, 100u);
    }
  }
  EXPECT_EQ(stream.total_items(), 150u);
}

TEST(SyntheticStreamTest, EmptyStepsAreLegal) {
  // Poisson with tiny lambda produces many empty steps; the stream must
  // keep the clock moving and indices contiguous.
  auto stream = SyntheticStream(UniformValues::Create(10).ValueOrDie(),
                                std::move(PoissonBurstArrivals::Create(0.2))
                                    .ValueOrDie(),
                                /*seed=*/13);
  StreamIndex expect_index = 0;
  int empty_steps = 0;
  for (Timestamp t = 0; t < 2000; ++t) {
    const auto& burst = stream.Step();
    if (burst.empty()) ++empty_steps;
    for (const Item& item : burst) EXPECT_EQ(item.index, expect_index++);
  }
  EXPECT_GT(empty_steps, 1000);  // e^-0.2 ~ 0.82 of steps are empty
}

// --- DriveFile mmap fast path vs stdio line path -------------------------
//
// DriveFile maps regular files and parses in place (DriveBuffer); the
// stdio DriveLines path must stay drop-in equivalent: same items, same
// final sampler state bit for bit, same errors with the same line numbers.

class DriverEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/drive_equiv_stream.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& text) {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }

  static std::string SamplerStateBytes(WindowSampler& sampler) {
    BinaryWriter w;
    sampler.SaveState(&w);
    return w.Release();
  }

  /// Runs the same file through DriveFile (mmap) and DriveLines (stdio)
  /// on same-seeded samplers and requires identical outcomes.
  void ExpectEquivalent(const std::string& text, bool timestamped) {
    WriteFile(text);
    SamplerConfig config;
    config.window_n = 8;
    config.window_t = 8;
    config.k = 4;
    config.seed = 42;
    auto mapped = CreateSampler("bop-seq-swr", config).ValueOrDie();
    auto stdio = CreateSampler("bop-seq-swr", config).ValueOrDie();
    StreamDriver driver;

    auto mapped_result = driver.DriveFile(path_, timestamped, *mapped);
    std::FILE* f = std::fopen(path_.c_str(), "r");
    ASSERT_NE(f, nullptr);
    auto stdio_result = driver.DriveLines(f, path_, timestamped, *stdio);
    std::fclose(f);

    ASSERT_EQ(mapped_result.ok(), stdio_result.ok());
    if (!mapped_result.ok()) {
      EXPECT_EQ(mapped_result.status().message(),
                stdio_result.status().message());
      return;
    }
    EXPECT_EQ(mapped_result.value().items, stdio_result.value().items);
    EXPECT_EQ(mapped_result.value().batches, stdio_result.value().batches);
    EXPECT_EQ(SamplerStateBytes(*mapped), SamplerStateBytes(*stdio));
  }

  std::string path_;
};

TEST_F(DriverEquivalenceTest, PlainValues) {
  std::string text;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    text += std::to_string(rng.UniformIndex(1000)) + "\n";
  }
  ExpectEquivalent(text, /*timestamped=*/false);
}

TEST_F(DriverEquivalenceTest, BlankLinesAndWhitespace) {
  ExpectEquivalent("1\n\n  2\n   \n\t\n\t 3 \n4", /*timestamped=*/false);
}

TEST_F(DriverEquivalenceTest, TimestampedWithBursts) {
  std::string text;
  Rng rng(13);
  Timestamp ts = 0;
  for (int i = 0; i < 3000; ++i) {
    ts += static_cast<Timestamp>(rng.UniformIndex(3));
    text += std::to_string(ts) + " " + std::to_string(rng.NextU64() % 97) +
            "\n";
  }
  ExpectEquivalent(text, /*timestamped=*/true);
}

TEST_F(DriverEquivalenceTest, MissingTrailingNewline) {
  ExpectEquivalent("5\n6\n7", /*timestamped=*/false);
}

TEST_F(DriverEquivalenceTest, NulInsideOverlongLineRejectedByBothPaths) {
  // Doubly out-of-grammar garbage: a NUL inside a >254-char line. The
  // stdio buffer re-splits such a line into 255-byte chunks, so the two
  // paths may name different line numbers — but both must reject it
  // (see DriveFile's doc; this is the one sanctioned divergence).
  const std::string text =
      "1\n" + (std::string("7") + '\0' + std::string(300, 'x')) + "\n2\n";
  WriteFile(text);
  SamplerConfig config;
  config.window_n = 4;
  config.k = 1;
  config.seed = 1;
  auto mapped = CreateSampler("bop-seq-single", config).ValueOrDie();
  auto stdio = CreateSampler("bop-seq-single", config).ValueOrDie();
  StreamDriver driver;
  auto mapped_result = driver.DriveFile(path_, false, *mapped);
  std::FILE* f = std::fopen(path_.c_str(), "r");
  ASSERT_NE(f, nullptr);
  auto stdio_result = driver.DriveLines(f, path_, false, *stdio);
  std::fclose(f);
  EXPECT_FALSE(mapped_result.ok());
  EXPECT_FALSE(stdio_result.ok());
}

TEST_F(DriverEquivalenceTest, StrayNulTruncatesLineOnBothPaths) {
  // The stdio path parses with strlen semantics, so a NUL truncates its
  // line; the mmap path mirrors that (out-of-grammar input, but the two
  // paths must still agree).
  ExpectEquivalent(std::string("5\n") + std::string("\0 junk\n", 7) +
                       "6\n" + std::string("7\0 tail\n", 8),
                   /*timestamped=*/false);
}

TEST_F(DriverEquivalenceTest, MalformedLineSameError) {
  ExpectEquivalent("1\n2\nnope\n4\n", /*timestamped=*/false);
}

TEST_F(DriverEquivalenceTest, DecreasingTimestampSameError) {
  ExpectEquivalent("1 5\n2 6\n1 7\n", /*timestamped=*/true);
}

TEST_F(DriverEquivalenceTest, OverlongLineSameError) {
  ExpectEquivalent("1\n" + std::string(300, '7') + "\n2\n",
                   /*timestamped=*/false);
}

TEST_F(DriverEquivalenceTest, MalformedErrorNamesLine) {
  WriteFile("1\n2\nbad line\n");
  SamplerConfig config;
  config.window_n = 4;
  config.k = 1;
  config.seed = 1;
  auto sampler = CreateSampler("bop-seq-single", config).ValueOrDie();
  auto result = StreamDriver().DriveFile(path_, false, *sampler);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(path_ + ":3"), std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("malformed event line"),
            std::string::npos);
}

TEST_F(DriverEquivalenceTest, EmptyFileDeliversNothing) {
  WriteFile("");
  SamplerConfig config;
  config.window_n = 4;
  config.k = 1;
  config.seed = 1;
  auto sampler = CreateSampler("bop-seq-single", config).ValueOrDie();
  auto result = StreamDriver().DriveFile(path_, false, *sampler);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().items, 0u);
}

TEST(DriveBufferTest, ParsesDirectlyFromMemory) {
  SamplerConfig config;
  config.window_n = 4;
  config.k = 1;
  config.seed = 3;
  auto sampler = CreateSampler("bop-seq-single", config).ValueOrDie();
  auto result = StreamDriver().DriveBuffer("10\n20\n\n30\n", "mem",
                                           /*timestamped=*/false, *sampler);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().items, 3u);
}

TEST(ParseEventSpanTest, GrammarCorners) {
  uint64_t value = 0;
  Timestamp ts = 0;
  auto parse = [&](const std::string& s, bool timestamped,
                   Timestamp last_ts = 0) {
    return ParseEventSpan(s.data(), s.data() + s.size(), timestamped,
                          last_ts, &value, &ts);
  };
  EXPECT_EQ(parse("42", false), LineParse::kOk);
  EXPECT_EQ(value, 42u);
  EXPECT_EQ(parse("  +7 ", false), LineParse::kOk);
  EXPECT_EQ(value, 7u);
  EXPECT_EQ(parse("", false), LineParse::kBlank);
  EXPECT_EQ(parse(" \t ", false), LineParse::kBlank);
  EXPECT_EQ(parse("x42", false), LineParse::kMalformed);
  EXPECT_EQ(parse("- 1", false), LineParse::kMalformed);
  EXPECT_EQ(parse("5 9", true), LineParse::kOk);
  EXPECT_EQ(ts, 5);
  EXPECT_EQ(value, 9u);
  EXPECT_EQ(parse("5", true), LineParse::kMalformed);
  EXPECT_EQ(parse("3 9", true, /*last_ts=*/4), LineParse::kNonMonotone);
}

}  // namespace
}  // namespace swsample
