// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Unit tests for the stream substrate: value generators, arrival processes
// and the composed SyntheticStream.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "stream/arrival.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"
#include "util/rng.h"

namespace swsample {
namespace {

TEST(UniformValuesTest, RejectsEmptyDomain) {
  EXPECT_FALSE(UniformValues::Create(0).ok());
}

TEST(UniformValuesTest, StaysInDomain) {
  auto gen = UniformValues::Create(10).ValueOrDie();
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(gen->Next(rng), 10u);
}

TEST(UniformValuesTest, CoversDomain) {
  auto gen = UniformValues::Create(8).ValueOrDie();
  Rng rng(2);
  std::vector<uint64_t> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[gen->Next(rng)];
  for (uint64_t c : counts) EXPECT_GT(c, 800u);
}

TEST(ZipfValuesTest, RejectsBadParams) {
  EXPECT_FALSE(ZipfValues::Create(0, 1.0).ok());
  EXPECT_FALSE(ZipfValues::Create(10, -1.0).ok());
}

TEST(ZipfValuesTest, SkewFavorsSmallValues) {
  auto gen = ZipfValues::Create(100, 1.2).ValueOrDie();
  Rng rng(3);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[gen->Next(rng)];
  // Head value must dominate the tail value heavily under alpha=1.2.
  EXPECT_GT(counts[0], 10 * counts[50] / 2);
  EXPECT_GT(counts[0], counts[1]);
}

TEST(ZipfValuesTest, AlphaZeroIsUniform) {
  auto gen = ZipfValues::Create(16, 0.0).ValueOrDie();
  Rng rng(4);
  std::vector<uint64_t> counts(16, 0);
  for (int i = 0; i < 64000; ++i) ++counts[gen->Next(rng)];
  for (uint64_t c : counts) {
    EXPECT_GT(c, 3000u);
    EXPECT_LT(c, 5000u);
  }
}

TEST(ZipfValuesTest, FrequencyMatchesTheory) {
  const double alpha = 1.0;
  auto gen = ZipfValues::Create(50, alpha).ValueOrDie();
  Rng rng(5);
  const int trials = 200000;
  uint64_t head = 0;
  for (int i = 0; i < trials; ++i) head += (gen->Next(rng) == 0);
  double harmonic = 0.0;
  for (int i = 1; i <= 50; ++i) harmonic += 1.0 / i;
  EXPECT_NEAR(static_cast<double>(head) / trials, 1.0 / harmonic, 0.01);
}

TEST(SequentialValuesTest, RoundRobin) {
  auto gen = SequentialValues::Create(3).ValueOrDie();
  Rng rng(6);
  std::vector<uint64_t> seen;
  for (int i = 0; i < 7; ++i) seen.push_back(gen->Next(rng));
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(ConstantRateArrivalsTest, ExactCount) {
  ConstantRateArrivals arrivals(5);
  Rng rng(7);
  for (Timestamp t = 0; t < 100; ++t) EXPECT_EQ(arrivals.CountAt(t, rng), 5u);
}

TEST(PoissonBurstArrivalsTest, RejectsBadLambda) {
  EXPECT_FALSE(PoissonBurstArrivals::Create(0.0).ok());
  EXPECT_FALSE(PoissonBurstArrivals::Create(-3.0).ok());
}

TEST(PoissonBurstArrivalsTest, MeanMatchesLambdaSmall) {
  auto arrivals = PoissonBurstArrivals::Create(4.0).ValueOrDie();
  Rng rng(8);
  uint64_t total = 0;
  const int steps = 50000;
  for (int t = 0; t < steps; ++t) total += arrivals->CountAt(t, rng);
  EXPECT_NEAR(static_cast<double>(total) / steps, 4.0, 0.1);
}

TEST(PoissonBurstArrivalsTest, MeanMatchesLambdaLarge) {
  auto arrivals = PoissonBurstArrivals::Create(100.0).ValueOrDie();
  Rng rng(9);
  uint64_t total = 0;
  const int steps = 20000;
  for (int t = 0; t < steps; ++t) total += arrivals->CountAt(t, rng);
  EXPECT_NEAR(static_cast<double>(total) / steps, 100.0, 1.0);
}

TEST(DoublingBurstArrivalsTest, RejectsBadParams) {
  EXPECT_FALSE(DoublingBurstArrivals::Create(0, 10).ok());
  EXPECT_FALSE(DoublingBurstArrivals::Create(31, 10).ok());
  EXPECT_FALSE(DoublingBurstArrivals::Create(5, 0).ok());
}

TEST(DoublingBurstArrivalsTest, DoublingShape) {
  auto arrivals =
      DoublingBurstArrivals::Create(/*t0=*/4, /*max_burst=*/1 << 20)
          .ValueOrDie();
  Rng rng(10);
  // 2^(2*4 - t) for t <= 8, then 1.
  EXPECT_EQ(arrivals->CountAt(0, rng), 256u);
  EXPECT_EQ(arrivals->CountAt(1, rng), 128u);
  EXPECT_EQ(arrivals->CountAt(8, rng), 1u);
  EXPECT_EQ(arrivals->CountAt(9, rng), 1u);
  EXPECT_EQ(arrivals->CountAt(100, rng), 1u);
}

TEST(DoublingBurstArrivalsTest, CapsAtMaxBurst) {
  auto arrivals =
      DoublingBurstArrivals::Create(/*t0=*/10, /*max_burst=*/64).ValueOrDie();
  Rng rng(11);
  EXPECT_EQ(arrivals->CountAt(0, rng), 64u);   // 2^20 capped
  EXPECT_EQ(arrivals->CountAt(14, rng), 64u);  // 2^6 == 64
  EXPECT_EQ(arrivals->CountAt(15, rng), 32u);
}

TEST(SyntheticStreamTest, IndicesAndTimestampsConsistent) {
  auto stream = SyntheticStream(
      UniformValues::Create(100).ValueOrDie(),
      std::make_unique<ConstantRateArrivals>(3), /*seed=*/12);
  StreamIndex expect_index = 0;
  for (Timestamp t = 0; t < 50; ++t) {
    const auto& burst = stream.Step();
    EXPECT_EQ(stream.now(), t);
    ASSERT_EQ(burst.size(), 3u);
    for (const Item& item : burst) {
      EXPECT_EQ(item.index, expect_index++);
      EXPECT_EQ(item.timestamp, t);
      EXPECT_LT(item.value, 100u);
    }
  }
  EXPECT_EQ(stream.total_items(), 150u);
}

TEST(SyntheticStreamTest, EmptyStepsAreLegal) {
  // Poisson with tiny lambda produces many empty steps; the stream must
  // keep the clock moving and indices contiguous.
  auto stream = SyntheticStream(UniformValues::Create(10).ValueOrDie(),
                                std::move(PoissonBurstArrivals::Create(0.2))
                                    .ValueOrDie(),
                                /*seed=*/13);
  StreamIndex expect_index = 0;
  int empty_steps = 0;
  for (Timestamp t = 0; t < 2000; ++t) {
    const auto& burst = stream.Step();
    if (burst.empty()) ++empty_steps;
    for (const Item& item : burst) EXPECT_EQ(item.index, expect_index++);
  }
  EXPECT_GT(empty_steps, 1000);  // e^-0.2 ~ 0.82 of steps are empty
}

}  // namespace
}  // namespace swsample
