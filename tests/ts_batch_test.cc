// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Distributional equivalence of the timestamp samplers' batched fast
// paths. ObserveBatch on the ts family is NOT coin-for-coin identical to
// item-by-item Observe (the closed-form run append draws samples by index
// instead of replaying the merge cascade), so these tests check the
// guarantee that actually matters: over many seeded trials, the batched
// sample distribution is uniform over the active window and
// indistinguishable from the item path's.
//
// The shared stream is adversarial for the fast paths: two long
// same-timestamp runs (above the ExtendRun cutover, cut mid-run by the
// ragged batch size), bursty clock gaps that force partial and full
// expiry, and a short same-timestamp run below the cutover that must take
// the per-item merge-coin path.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "stat_check.h"
#include "stats/tests.h"

namespace swsample {
namespace {

constexpr Timestamp kT0 = 10;
constexpr uint64_t kActive = 16;       // items with ts > 30 - kT0
constexpr uint64_t kActiveStart = 48;  // index of the first active item

// 64 items; exactly the last 16 (ts > 20) are active at the final clock
// value 30. Runs of 20 at ts=0 and ts=7 exceed the batch-append cutover;
// the run of 5 at ts=21 stays below it; the 7->12->18 jumps are the
// bursty gaps that cross the expiry horizon.
std::vector<Item> MakeTsStream() {
  std::vector<Timestamp> ts;
  ts.insert(ts.end(), 20, 0);
  ts.insert(ts.end(), {2, 2, 4, 4, 6});
  ts.insert(ts.end(), 20, 7);
  ts.insert(ts.end(), {12, 18, 20});
  ts.insert(ts.end(),
            {21, 21, 21, 21, 21, 22, 25, 25, 25, 27, 28, 28, 29, 30, 30, 30});
  std::vector<Item> items;
  items.reserve(ts.size());
  for (uint64_t i = 0; i < ts.size(); ++i) {
    items.push_back(Item{i, i, ts[i]});
  }
  return items;
}

// Per-active-position sample counts over many trials; batch == 0 means
// item-by-item Observe. Counts every returned sample, so it works for
// k > 1 without-replacement samples too (each position is then included
// with probability k / kActive, still uniform across positions).
std::vector<uint64_t> TsPositionCounts(const char* name, uint64_t k,
                                       uint64_t batch, int trials,
                                       uint64_t seed) {
  const std::vector<Item> items = MakeTsStream();
  std::vector<uint64_t> counts(kActive, 0);
  for (int t = 0; t < trials; ++t) {
    SamplerConfig config;
    config.window_t = kT0;
    config.k = k;
    config.seed = seed + static_cast<uint64_t>(t);
    auto sampler = CreateSampler(name, config).ValueOrDie();
    if (batch == 0) {
      for (const Item& item : items) sampler->Observe(item);
    } else {
      for (uint64_t pos = 0; pos < items.size(); pos += batch) {
        const uint64_t take = std::min<uint64_t>(batch, items.size() - pos);
        sampler->ObserveBatch(std::span<const Item>(items.data() + pos, take));
      }
    }
    for (const Item& sample : sampler->Sample()) {
      EXPECT_GE(sample.index, kActiveStart) << name << " sampled expired item";
      if (sample.index < kActiveStart) continue;
      ++counts[sample.index - kActiveStart];
    }
  }
  return counts;
}

void CheckBatchedUniform(const char* name, uint64_t batch) {
  auto counts = TsPositionCounts(name, /*k=*/1, batch, /*trials=*/30000,
                                 /*seed=*/2000);
  EXPECT_TRUE(IsUniform(counts, /*seed=*/2000))
      << name << " batch=" << batch;
}

// Ragged batches cut both long runs mid-run (boundaries at 17 and 34).
TEST(TsBatchTest, BatchedSingleUniform) {
  CheckBatchedUniform("bop-ts-single", 17);
}
TEST(TsBatchTest, BatchedSwrUniform) { CheckBatchedUniform("bop-ts-swr", 17); }
TEST(TsBatchTest, BatchedSworUniform) {
  CheckBatchedUniform("bop-ts-swor", 17);
}

// The whole stream in one call maximizes the closed-form append spans.
TEST(TsBatchTest, WholeStreamBatchUniform) {
  CheckBatchedUniform("bop-ts-single", 64);
  CheckBatchedUniform("bop-ts-swor", 64);
}

TEST(TsBatchTest, BatchMatchesObserveDistributionally) {
  const int trials = 30000;
  for (const char* name : {"bop-ts-single", "bop-ts-swr", "bop-ts-swor"}) {
    auto batched = TsPositionCounts(name, /*k=*/1, /*batch=*/17, trials,
                                    /*seed=*/4000);
    auto unbatched = TsPositionCounts(name, /*k=*/1, /*batch=*/0, trials,
                                      /*seed=*/6000);
    EXPECT_TRUE(SameDistribution(batched, unbatched, /*seed=*/4000)) << name;
  }
}

// k > 1 exercises TsSwor's unit-major delayed-delivery schedule (each
// unit i replays the batch shifted by i, with the prefix served from the
// pre-batch recent-items snapshot across the batch boundaries).
TEST(TsBatchTest, SworMultiSampleBatchMatchesObserve) {
  const int trials = 30000;
  auto batched = TsPositionCounts("bop-ts-swor", /*k=*/4, /*batch=*/17,
                                  trials, /*seed=*/8000);
  auto unbatched = TsPositionCounts("bop-ts-swor", /*k=*/4, /*batch=*/0,
                                    trials, /*seed=*/10000);
  EXPECT_TRUE(SameDistribution(batched, unbatched, /*seed=*/8000));
  EXPECT_TRUE(IsUniform(batched, /*seed=*/8000));
}

}  // namespace
}  // namespace swsample
