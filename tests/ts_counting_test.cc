// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the timestamp-window payload tracker and the timestamp halves
// of Corollaries 5.2/5.4 behind the estimator registry: forward counts
// must be exact for the sampled position, candidates must survive merges
// and re-straddling (item-wise AND batched), and F_k / entropy estimates
// must track the exact windowed value with the extra (1 +/- eps) count
// factor — including under bursty arrivals with AdvanceTime-only steps.

#include <cmath>
#include <cstdint>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/estimator_registry.h"
#include "apps/payload_substrate.h"
#include "stats/exact.h"
#include "stream/value_gen.h"
#include "util/rng.h"

namespace swsample {
namespace {

TsForwardCountUnit MakeUnit(Timestamp t0, uint64_t seed) {
  return TsForwardCountUnit(t0, seed, CountOnSampled{}, CountOnArrival{});
}

TEST(TsForwardCountTest, CountsExactOnFixedStream) {
  // One-per-step arrivals with known values; whatever position is sampled,
  // the reported count must equal the true forward occurrence count.
  const std::vector<uint64_t> values = {1, 2, 1, 3, 1, 2, 2, 1, 3, 1,
                                        2, 1, 1, 3, 2, 1, 2, 3, 3, 1};
  for (int trial = 0; trial < 300; ++trial) {
    auto unit = MakeUnit(/*t0=*/12, Rng::ForkSeed(100, trial));
    for (uint64_t i = 0; i < values.size(); ++i) {
      unit.Observe(Item{values[i], i, static_cast<Timestamp>(i)});
    }
    auto s = unit.Sample();
    ASSERT_TRUE(s.has_value());
    uint64_t expected = 0;
    for (uint64_t j = s->item.index; j < values.size(); ++j) {
      expected += (values[j] == values[s->item.index]);
    }
    EXPECT_EQ(s->payload.count, expected)
        << "sampled index " << s->item.index;
  }
}

TEST(TsForwardCountTest, BatchedCountsExactOnFixedStream) {
  // The batched path defers the candidate-map sync to the batch end and
  // replays new candidates from the span; the forward counts must come out
  // identical to item-wise feeding, at every ragged batch size.
  const std::vector<uint64_t> values = {1, 2, 1, 3, 1, 2, 2, 1, 3, 1,
                                        2, 1, 1, 3, 2, 1, 2, 3, 3, 1};
  std::vector<Item> items;
  for (uint64_t i = 0; i < values.size(); ++i) {
    items.push_back(Item{values[i], i, static_cast<Timestamp>(i)});
  }
  for (uint64_t batch : {1u, 3u, 7u, 20u}) {
    for (int trial = 0; trial < 100; ++trial) {
      auto unit = MakeUnit(/*t0=*/12, Rng::ForkSeed(4000 + batch, trial));
      for (uint64_t pos = 0; pos < items.size(); pos += batch) {
        const uint64_t take =
            std::min<uint64_t>(batch, items.size() - pos);
        unit.ObserveBatch(
            std::span<const Item>(items.data() + pos, take));
      }
      auto s = unit.Sample();
      ASSERT_TRUE(s.has_value());
      uint64_t expected = 0;
      for (uint64_t j = s->item.index; j < values.size(); ++j) {
        expected += (values[j] == values[s->item.index]);
      }
      EXPECT_EQ(s->payload.count, expected)
          << "batch " << batch << " sampled index " << s->item.index;
    }
  }
}

TEST(TsForwardCountTest, CountsSurviveExpiryRestructuring) {
  // Bursts then silence force straddle transitions; counts stay exact.
  Rng value_rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    auto unit = MakeUnit(/*t0=*/6, Rng::ForkSeed(500, trial));
    std::vector<uint64_t> values;
    uint64_t index = 0;
    Timestamp t = 0;
    for (uint64_t burst : {5u, 0u, 3u, 0u, 0u, 4u, 1u, 2u}) {
      for (uint64_t i = 0; i < burst; ++i) {
        uint64_t v = value_rng.UniformIndex(3);
        values.push_back(v);
        unit.Observe(Item{v, index++, t});
      }
      unit.AdvanceTime(t);
      ++t;
    }
    auto s = unit.Sample();
    if (!s) continue;
    uint64_t expected = 0;
    for (uint64_t j = s->item.index; j < values.size(); ++j) {
      expected += (values[j] == values[s->item.index]);
    }
    EXPECT_EQ(s->payload.count, expected);
  }
}

TEST(TsForwardCountTest, MemoryStaysLogarithmic) {
  auto unit = MakeUnit(/*t0=*/1 << 12, /*seed=*/9);
  uint64_t max_words = 0;
  for (uint64_t i = 0; i < (1 << 13); ++i) {
    unit.Observe(Item{i % 64, i, static_cast<Timestamp>(i)});
    max_words = std::max(max_words, unit.MemoryWords());
  }
  EXPECT_LT(max_words, 1000u);  // O(log n) structures + payload map
}

EstimatorConfig TsConfig(Timestamp t0, uint64_t r, double count_eps,
                         uint64_t seed) {
  EstimatorConfig config;
  config.substrate = "bop-ts-single";
  config.window_t = t0;
  config.r = r;
  config.count_eps = count_eps;
  config.seed = seed;
  return config;
}

TEST(TsFkEstimatorTest, CreateValidation) {
  EXPECT_FALSE(CreateEstimator("ams-fk", TsConfig(0, 8, 0.1, 1)).ok());
  EstimatorConfig bad_moment = TsConfig(8, 8, 0.1, 1);
  bad_moment.moment = 0;
  EXPECT_FALSE(CreateEstimator("ams-fk", bad_moment).ok());
  EXPECT_FALSE(CreateEstimator("ams-fk", TsConfig(8, 0, 0.1, 1)).ok());
  EXPECT_FALSE(CreateEstimator("ams-fk", TsConfig(8, 8, 0.0, 1)).ok());
  EXPECT_TRUE(CreateEstimator("ams-fk", TsConfig(8, 8, 0.1, 1)).ok());
}

TEST(TsFkEstimatorTest, EmptyWindowEstimatesZero) {
  auto est = CreateEstimator("ams-fk", TsConfig(5, 8, 0.1, 2)).ValueOrDie();
  EXPECT_DOUBLE_EQ(est->Estimate().value, 0.0);
  est->Observe(Item{1, 0, 0});
  est->AdvanceTime(100);
  EXPECT_DOUBLE_EQ(est->Estimate().value, 0.0);
}

TEST(TsFkEstimatorTest, F1TracksWindowSizeUnderBurst) {
  // F1 = n; with the AMS telescoping at moment 1 the per-unit estimate is
  // exactly the histogram's n-hat, so the error is the EH eps alone. The
  // bursty stream with AdvanceTime-only steps exercises expiry under the
  // clock, the satellite correctness requirement.
  EstimatorConfig config = TsConfig(64, 4, 0.05, 3);
  config.moment = 1;
  auto est = CreateEstimator("ams-fk", config).ValueOrDie();
  Rng rng(4);
  uint64_t index = 0;
  std::deque<Timestamp> active;
  for (Timestamp t = 0; t < 300; ++t) {
    const uint64_t burst = rng.UniformIndex(4);  // 0..3: some steps empty
    for (uint64_t i = 0; i < burst; ++i) {
      est->Observe(Item{rng.UniformIndex(100), index++, t});
      active.push_back(t);
    }
    est->AdvanceTime(t);
    while (!active.empty() && t - active.front() >= 64) active.pop_front();
  }
  EstimateReport report = est->Estimate();
  EXPECT_DOUBLE_EQ(report.value, report.window_size);
  const double exact = static_cast<double>(active.size());
  EXPECT_NEAR(report.window_size / exact, 1.0, 0.06);
}

TEST(TsEntropyEstimatorTest, CreateValidation) {
  EXPECT_FALSE(CreateEstimator("ccm-entropy", TsConfig(0, 8, 0.1, 1)).ok());
  EXPECT_FALSE(CreateEstimator("ccm-entropy", TsConfig(8, 0, 0.1, 1)).ok());
  EXPECT_FALSE(CreateEstimator("ccm-entropy", TsConfig(8, 8, 0.0, 1)).ok());
  EXPECT_TRUE(CreateEstimator("ccm-entropy", TsConfig(8, 8, 0.1, 1)).ok());
}

TEST(TsEntropyEstimatorTest, ConstantStreamNearZero) {
  auto est =
      CreateEstimator("ccm-entropy", TsConfig(64, 2000, 0.05, 2)).ValueOrDie();
  uint64_t index = 0;
  for (Timestamp t = 0; t < 200; ++t) {
    est->Observe(Item{7, index++, t});
    est->Observe(Item{7, index++, t});
  }
  EXPECT_NEAR(est->Estimate().value, 0.0, 0.25);
}

TEST(TsEntropyEstimatorTest, CloseToExactOnZipfWindow) {
  const Timestamp t0 = 512;
  auto est =
      CreateEstimator("ccm-entropy", TsConfig(t0, 2500, 0.05, 3)).ValueOrDie();
  auto gen = ZipfValues::Create(32, 1.0).ValueOrDie();
  Rng rng(4);
  std::deque<std::pair<Timestamp, uint64_t>> window;
  uint64_t index = 0;
  for (Timestamp t = 0; t < 3 * t0; ++t) {
    const uint64_t burst = 1 + rng.UniformIndex(3);
    for (uint64_t i = 0; i < burst; ++i) {
      const uint64_t v = gen->Next(rng);
      est->Observe(Item{v, index++, t});
      window.emplace_back(t, v);
    }
    est->AdvanceTime(t);
    while (!window.empty() && t - window.front().first >= t0) {
      window.pop_front();
    }
  }
  std::vector<uint64_t> values;
  for (const auto& [ts, v] : window) values.push_back(v);
  const double exact = ExactEntropy(values);
  EXPECT_NEAR(est->Estimate().value, exact, 0.15 * exact + 0.1);
}

TEST(TsFkEstimatorTest, F2CloseToExactOnSkewedWindow) {
  const Timestamp t0 = 512;
  auto est =
      CreateEstimator("ams-fk", TsConfig(t0, 1500, 0.05, 5)).ValueOrDie();
  auto gen = ZipfValues::Create(8, 1.4).ValueOrDie();
  Rng rng(6);
  std::deque<std::pair<Timestamp, uint64_t>> window;
  uint64_t index = 0;
  for (Timestamp t = 0; t < 3 * t0; ++t) {
    const uint64_t burst = 1 + rng.UniformIndex(3);
    for (uint64_t i = 0; i < burst; ++i) {
      const uint64_t v = gen->Next(rng);
      est->Observe(Item{v, index++, t});
      window.emplace_back(t, v);
    }
    est->AdvanceTime(t);
    while (!window.empty() && t - window.front().first >= t0) {
      window.pop_front();
    }
  }
  std::vector<uint64_t> values;
  for (const auto& [ts, v] : window) values.push_back(v);
  const double exact = ExactFrequencyMoment(values, 2);
  const double estimate = est->Estimate().value;
  EXPECT_NEAR(estimate / exact, 1.0, 0.25)
      << "estimate=" << estimate << " exact=" << exact;
}

TEST(WindowCountTest, TracksActiveCountUnderBurst) {
  // window-count over the DGIM substrate vs the exact-ts oracle on the
  // same bursty stream with AdvanceTime gaps: the oracle is exact, the
  // histogram within eps.
  EstimatorConfig config = TsConfig(32, 1, 0.05, 7);
  auto dgim = CreateEstimator("window-count", config).ValueOrDie();
  config.substrate = "exact-ts";
  auto oracle = CreateEstimator("window-count", config).ValueOrDie();
  Rng rng(8);
  std::deque<Timestamp> active;
  uint64_t index = 0;
  for (Timestamp t = 0; t < 400; ++t) {
    const uint64_t burst = rng.UniformIndex(5);
    for (uint64_t i = 0; i < burst; ++i) {
      const Item item{rng.UniformIndex(10), index++, t};
      dgim->Observe(item);
      oracle->Observe(item);
      active.push_back(t);
    }
    dgim->AdvanceTime(t);
    oracle->AdvanceTime(t);
    while (!active.empty() && t - active.front() >= 32) active.pop_front();
    const double exact = static_cast<double>(active.size());
    EXPECT_DOUBLE_EQ(oracle->Estimate().value, exact);
    // eps-relative plus a small additive slack: the straddling bucket's
    // half-weight rounding costs up to ~1 element at tiny counts.
    EXPECT_NEAR(dgim->Estimate().value, exact,
                std::max(0.06 * exact, 1.5))
        << "t=" << t;
  }
}

}  // namespace
}  // namespace swsample
