// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for the timestamp-window forward-count tracker and the TsFk
// estimator (the timestamp half of Corollary 5.2): forward counts must be
// exact for the sampled position, candidates must survive merges and
// re-straddling, and F_k estimates must track the exact windowed value
// with the extra (1 +/- eps) count factor.

#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "apps/ts_counting.h"
#include "stats/exact.h"
#include "stream/value_gen.h"
#include "util/rng.h"

namespace swsample {
namespace {

TEST(TsForwardCountTest, CountsExactOnFixedStream) {
  // One-per-step arrivals with known values; whatever position is sampled,
  // the reported count must equal the true forward occurrence count.
  const std::vector<uint64_t> values = {1, 2, 1, 3, 1, 2, 2, 1, 3, 1,
                                        2, 1, 1, 3, 2, 1, 2, 3, 3, 1};
  for (int trial = 0; trial < 300; ++trial) {
    TsForwardCountUnit unit(/*t0=*/12, /*seed=*/100 + trial);
    for (uint64_t i = 0; i < values.size(); ++i) {
      unit.Observe(Item{values[i], i, static_cast<Timestamp>(i)});
    }
    auto s = unit.Sample();
    ASSERT_TRUE(s.has_value());
    uint64_t expected = 0;
    for (uint64_t j = s->item.index; j < values.size(); ++j) {
      expected += (values[j] == values[s->item.index]);
    }
    EXPECT_EQ(s->count, expected) << "sampled index " << s->item.index;
  }
}

TEST(TsForwardCountTest, CountsSurviveExpiryRestructuring) {
  // Bursts then silence force straddle transitions; counts stay exact.
  Rng value_rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    TsForwardCountUnit unit(/*t0=*/6, /*seed=*/500 + trial);
    std::vector<uint64_t> values;
    uint64_t index = 0;
    Timestamp t = 0;
    for (uint64_t burst : {5u, 0u, 3u, 0u, 0u, 4u, 1u, 2u}) {
      for (uint64_t i = 0; i < burst; ++i) {
        uint64_t v = value_rng.UniformIndex(3);
        values.push_back(v);
        unit.Observe(Item{v, index++, t});
      }
      unit.AdvanceTime(t);
      ++t;
    }
    auto s = unit.Sample();
    if (!s) continue;
    uint64_t expected = 0;
    for (uint64_t j = s->item.index; j < values.size(); ++j) {
      expected += (values[j] == values[s->item.index]);
    }
    EXPECT_EQ(s->count, expected);
  }
}

TEST(TsForwardCountTest, MemoryStaysLogarithmic) {
  TsForwardCountUnit unit(/*t0=*/1 << 12, /*seed=*/9);
  uint64_t max_words = 0;
  for (uint64_t i = 0; i < (1 << 13); ++i) {
    unit.Observe(Item{i % 64, i, static_cast<Timestamp>(i)});
    max_words = std::max(max_words, unit.MemoryWords());
  }
  EXPECT_LT(max_words, 1000u);  // O(log n) structures + payload map
}

TEST(TsFkEstimatorTest, CreateValidation) {
  EXPECT_FALSE(TsFkEstimator::Create(0, 2, 8, 0.1, 1).ok());
  EXPECT_FALSE(TsFkEstimator::Create(8, 0, 8, 0.1, 1).ok());
  EXPECT_FALSE(TsFkEstimator::Create(8, 2, 0, 0.1, 1).ok());
  EXPECT_FALSE(TsFkEstimator::Create(8, 2, 8, 0.0, 1).ok());
  EXPECT_TRUE(TsFkEstimator::Create(8, 2, 8, 0.1, 1).ok());
}

TEST(TsFkEstimatorTest, EmptyWindowEstimatesZero) {
  auto est = TsFkEstimator::Create(5, 2, 8, 0.1, 2).ValueOrDie();
  EXPECT_DOUBLE_EQ(est->Estimate(), 0.0);
  est->Observe(Item{1, 0, 0});
  est->AdvanceTime(100);
  EXPECT_DOUBLE_EQ(est->Estimate(), 0.0);
}

TEST(TsFkEstimatorTest, F1TracksWindowSize) {
  // F1 = n; with the AMS telescoping at moment 1 the per-unit estimate is
  // exactly the histogram's n-hat, so the error is the EH eps alone.
  auto est = TsFkEstimator::Create(64, 1, 4, 0.05, 3).ValueOrDie();
  Rng rng(4);
  uint64_t index = 0;
  for (Timestamp t = 0; t < 300; ++t) {
    const uint64_t burst = 1 + rng.UniformIndex(4);
    for (uint64_t i = 0; i < burst; ++i) {
      est->Observe(Item{rng.UniformIndex(100), index++, t});
    }
    est->AdvanceTime(t);
  }
  // Exact active count: arrivals in the last 64 steps, ~2.5*64.
  const double estimate = est->Estimate();
  const double n_hat = static_cast<double>(est->WindowSizeEstimate());
  EXPECT_DOUBLE_EQ(estimate, n_hat);
  EXPECT_GT(n_hat, 100.0);
  EXPECT_LT(n_hat, 250.0);
}

TEST(TsEntropyEstimatorTest, CreateValidation) {
  EXPECT_FALSE(TsEntropyEstimator::Create(0, 8, 0.1, 1).ok());
  EXPECT_FALSE(TsEntropyEstimator::Create(8, 0, 0.1, 1).ok());
  EXPECT_FALSE(TsEntropyEstimator::Create(8, 8, 0.0, 1).ok());
  EXPECT_TRUE(TsEntropyEstimator::Create(8, 8, 0.1, 1).ok());
}

TEST(TsEntropyEstimatorTest, ConstantStreamNearZero) {
  auto est = TsEntropyEstimator::Create(64, 2000, 0.05, 2).ValueOrDie();
  uint64_t index = 0;
  for (Timestamp t = 0; t < 200; ++t) {
    est->Observe(Item{7, index++, t});
    est->Observe(Item{7, index++, t});
  }
  EXPECT_NEAR(est->Estimate(), 0.0, 0.25);
}

TEST(TsEntropyEstimatorTest, CloseToExactOnZipfWindow) {
  const Timestamp t0 = 512;
  auto est = TsEntropyEstimator::Create(t0, 2500, 0.05, 3).ValueOrDie();
  auto gen = ZipfValues::Create(32, 1.0).ValueOrDie();
  Rng rng(4);
  std::deque<std::pair<Timestamp, uint64_t>> window;
  uint64_t index = 0;
  for (Timestamp t = 0; t < 3 * t0; ++t) {
    const uint64_t burst = 1 + rng.UniformIndex(3);
    for (uint64_t i = 0; i < burst; ++i) {
      const uint64_t v = gen->Next(rng);
      est->Observe(Item{v, index++, t});
      window.emplace_back(t, v);
    }
    est->AdvanceTime(t);
    while (!window.empty() && t - window.front().first >= t0) {
      window.pop_front();
    }
  }
  std::vector<uint64_t> values;
  for (const auto& [ts, v] : window) values.push_back(v);
  const double exact = ExactEntropy(values);
  EXPECT_NEAR(est->Estimate(), exact, 0.15 * exact + 0.1);
}

TEST(TsFkEstimatorTest, F2CloseToExactOnSkewedWindow) {
  const Timestamp t0 = 512;
  auto est = TsFkEstimator::Create(t0, 2, 1500, 0.05, 5).ValueOrDie();
  auto gen = ZipfValues::Create(8, 1.4).ValueOrDie();
  Rng rng(6);
  std::deque<std::pair<Timestamp, uint64_t>> window;
  uint64_t index = 0;
  for (Timestamp t = 0; t < 3 * t0; ++t) {
    const uint64_t burst = 1 + rng.UniformIndex(3);
    for (uint64_t i = 0; i < burst; ++i) {
      const uint64_t v = gen->Next(rng);
      est->Observe(Item{v, index++, t});
      window.emplace_back(t, v);
    }
    est->AdvanceTime(t);
    while (!window.empty() && t - window.front().first >= t0) {
      window.pop_front();
    }
  }
  std::vector<uint64_t> values;
  for (const auto& [ts, v] : window) values.push_back(v);
  const double exact = ExactFrequencyMoment(values, 2);
  const double estimate = est->Estimate();
  EXPECT_NEAR(estimate / exact, 1.0, 0.25)
      << "estimate=" << estimate << " exact=" << exact;
}

}  // namespace
}  // namespace swsample
