// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for Theorem 3.9 / Lemma 3.5: timestamp-based single-sample
// maintenance. Claims verified: uniformity over the active window for
// constant-rate AND bursty arrivals (where the window size is unknowable),
// correct expiry across empty steps, Theta(log n) memory, and the internal
// state machine invariants.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/ts_single.h"
#include "stats/tests.h"
#include "stream/arrival.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"
#include "util/bits.h"

namespace swsample {
namespace {

TEST(TsSingleTest, CreateValidation) {
  EXPECT_FALSE(TsSingleSampler::Create(0, 1).ok());
  EXPECT_TRUE(TsSingleSampler::Create(10, 1).ok());
}

TEST(TsSingleTest, EmptyUntilFirstInsert) {
  auto s = TsSingleSampler::Create(10, 1).ValueOrDie();
  EXPECT_FALSE(s.SampleOne().has_value());
  EXPECT_FALSE(s.has_active());
}

TEST(TsSingleTest, SingleElementWindow) {
  auto s = TsSingleSampler::Create(10, 2).ValueOrDie();
  s.Observe(Item{7, 0, 100});
  auto sample = s.SampleOne();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->index, 0u);
}

TEST(TsSingleTest, ExpiryByClockAlone) {
  auto s = TsSingleSampler::Create(10, 3).ValueOrDie();
  s.Observe(Item{7, 0, 100});
  s.AdvanceTime(109);
  EXPECT_TRUE(s.SampleOne().has_value());  // 109 - 100 < 10
  s.AdvanceTime(110);
  EXPECT_FALSE(s.SampleOne().has_value());  // exactly t0 old: expired
}

TEST(TsSingleTest, RestartAfterEmpty) {
  auto s = TsSingleSampler::Create(5, 4).ValueOrDie();
  s.Observe(Item{1, 0, 0});
  s.AdvanceTime(100);
  EXPECT_FALSE(s.has_active());
  s.Observe(Item{2, 1, 100});
  auto sample = s.SampleOne();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->index, 1u);
}

TEST(TsSingleTest, PreExpiredInsertIsSkipped) {
  // Lemma 4.1: a delayed element already outside the window must not
  // poison an empty structure.
  auto s = TsSingleSampler::Create(5, 5).ValueOrDie();
  s.AdvanceTime(100);
  s.Insert(Item{1, 0, 90});  // expired (100 - 90 >= 5)
  EXPECT_FALSE(s.has_active());
  s.Insert(Item{2, 1, 98});  // active
  ASSERT_TRUE(s.has_active());
  EXPECT_EQ(s.SampleOne()->index, 1u);
}

TEST(TsSingleTest, SampleAlwaysActive) {
  // Long bursty run: every query must return an element inside the window.
  auto stream = SyntheticStream(
      UniformValues::Create(1000).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(3.0)).ValueOrDie(), 42);
  const Timestamp t0 = 25;
  auto s = TsSingleSampler::Create(t0, 6).ValueOrDie();
  for (Timestamp t = 0; t < 3000; ++t) {
    for (const Item& item : stream.Step()) s.Observe(item);
    s.AdvanceTime(t);
    ASSERT_TRUE(s.CheckInvariants()) << "t=" << t;
    auto sample = s.SampleOne();
    if (sample) {
      EXPECT_LT(t - sample->timestamp, t0) << "expired sample at t=" << t;
    }
  }
}

TEST(TsSingleTest, InvariantsUnderAdversarialBursts) {
  // Doubling bursts then a silent gap then more bursts.
  auto s = TsSingleSampler::Create(8, 7).ValueOrDie();
  uint64_t index = 0;
  Timestamp t = 0;
  auto burst = [&](uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      s.Observe(Item{index, index, t});
      ++index;
    }
    ++t;
  };
  for (uint64_t c : {64u, 32u, 16u, 8u, 4u, 2u, 1u, 1u, 1u}) burst(c);
  ASSERT_TRUE(s.CheckInvariants());
  t += 20;  // silence: everything expires
  s.AdvanceTime(t);
  EXPECT_FALSE(s.has_active());
  for (uint64_t c : {5u, 0u, 9u, 0u, 0u, 3u}) burst(c);
  ASSERT_TRUE(s.CheckInvariants());
  EXPECT_TRUE(s.has_active());
}

// Uniformity for a FIXED stream over algorithm randomness.
void CheckUniformOverWindow(double lambda, Timestamp horizon, Timestamp t0,
                            uint64_t seed, int trials) {
  // Materialize one stream.
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 20).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(lambda)).ValueOrDie(), seed);
  std::vector<Item> items;
  for (Timestamp t = 0; t < horizon; ++t) {
    for (const Item& item : stream.Step()) items.push_back(item);
  }
  // Active set at the end.
  std::vector<uint64_t> active;  // indices
  for (const Item& item : items) {
    if (horizon - 1 - item.timestamp < t0) active.push_back(item.index);
  }
  ASSERT_GE(active.size(), 2u);
  const uint64_t lo = active.front();
  std::vector<uint64_t> counts(active.size(), 0);
  for (int trial = 0; trial < trials; ++trial) {
    auto s = TsSingleSampler::Create(t0, seed * 131 + trial).ValueOrDie();
    for (const Item& item : items) s.Observe(item);
    s.AdvanceTime(horizon - 1);
    auto sample = s.SampleOne();
    ASSERT_TRUE(sample.has_value());
    ASSERT_GE(sample->index, lo);
    ++counts[sample->index - lo];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4)
      << "lambda=" << lambda << " t0=" << t0 << " stat=" << result.statistic
      << " window=" << active.size();
}

TEST(TsSingleTest, UniformConstantish) {
  CheckUniformOverWindow(/*lambda=*/1.5, /*horizon=*/60, /*t0=*/12,
                         /*seed=*/11, /*trials=*/30000);
}

TEST(TsSingleTest, UniformBursty) {
  CheckUniformOverWindow(/*lambda=*/4.0, /*horizon=*/50, /*t0=*/7,
                         /*seed=*/13, /*trials=*/30000);
}

TEST(TsSingleTest, UniformLongWindow) {
  CheckUniformOverWindow(/*lambda=*/1.0, /*horizon=*/80, /*t0=*/40,
                         /*seed=*/17, /*trials=*/30000);
}

TEST(TsSingleTest, UniformOnePerStep) {
  // Rate exactly 1/step: active window has exactly t0 elements.
  const Timestamp t0 = 16;
  const Timestamp horizon = 100;
  const int trials = 30000;
  std::vector<uint64_t> counts(t0, 0);
  for (int trial = 0; trial < trials; ++trial) {
    auto s = TsSingleSampler::Create(t0, 7000 + trial).ValueOrDie();
    for (Timestamp t = 0; t < horizon; ++t) {
      s.Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    }
    auto sample = s.SampleOne();
    ASSERT_TRUE(sample.has_value());
    const uint64_t lo = static_cast<uint64_t>(horizon - t0);
    ASSERT_GE(sample->index, lo);
    ++counts[sample->index - lo];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(TsSingleTest, MemoryIsLogarithmic) {
  // n active elements with one burst per step: structures must stay
  // O(log n) even as n reaches 2^14.
  const Timestamp t0 = 1 << 14;
  auto s = TsSingleSampler::Create(t0, 23).ValueOrDie();
  uint64_t max_structures = 0;
  uint64_t index = 0;
  for (Timestamp t = 0; t < (1 << 15); ++t) {
    s.Observe(Item{index, index, t});
    ++index;
    max_structures = std::max(max_structures, s.StructureCount());
  }
  EXPECT_LE(max_structures, 2 * FloorLog2(1 << 15) + 3);
  EXPECT_GE(max_structures, FloorLog2(1 << 14) / 2);
}

TEST(TsSingleTest, MemoryDropsWhenWindowShrinks) {
  const Timestamp t0 = 100;
  auto s = TsSingleSampler::Create(t0, 29).ValueOrDie();
  uint64_t index = 0;
  // Big burst at t=0 ...
  for (int i = 0; i < 4096; ++i) s.Observe(Item{index, index++, 0});
  const uint64_t words_full = s.MemoryWords();
  // ... wait until it all expires with a trickle arriving.
  for (Timestamp t = 1; t < 150; ++t) s.Observe(Item{index, index++, t});
  const uint64_t words_after = s.MemoryWords();
  EXPECT_LT(words_after, words_full);
  ASSERT_TRUE(s.CheckInvariants());
}

TEST(TsSingleTest, BatchSameTimestamp) {
  // Many items with one shared timestamp must all be sampleable.
  const int trials = 20000;
  const uint64_t burst = 10;
  std::vector<uint64_t> counts(burst, 0);
  for (int trial = 0; trial < trials; ++trial) {
    auto s = TsSingleSampler::Create(5, 31000 + trial).ValueOrDie();
    for (uint64_t i = 0; i < burst; ++i) s.Observe(Item{i, i, 7});
    auto sample = s.SampleOne();
    ASSERT_TRUE(sample.has_value());
    ++counts[sample->index];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

}  // namespace
}  // namespace swsample
