// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Tests for Theorem 4.4 (and the TsSwr wrapper of Theorem 3.9): timestamp-
// based k-sampling. For the without-replacement reduction the claims are:
// k DISTINCT active elements whenever n >= k, the exact window when n < k,
// all C(n, k) subsets equiprobable, and O(k log n) memory.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/ts_swor.h"
#include "core/ts_swr.h"
#include "stats/tests.h"
#include "stream/arrival.h"
#include "stream/stream_gen.h"
#include "stream/value_gen.h"
#include "util/bits.h"

namespace swsample {
namespace {

TEST(TsSwrTest, CreateValidation) {
  EXPECT_FALSE(TsSwrSampler::Create(0, 1, 1).ok());
  EXPECT_FALSE(TsSwrSampler::Create(5, 0, 1).ok());
  EXPECT_TRUE(TsSwrSampler::Create(5, 3, 1).ok());
}

TEST(TsSwrTest, ReturnsKSamplesAllActive) {
  auto s = TsSwrSampler::Create(10, 4, 2).ValueOrDie();
  for (Timestamp t = 0; t < 100; ++t) {
    s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), 4u);
    for (const Item& item : sample) EXPECT_LT(t - item.timestamp, 10);
  }
}

TEST(TsSwrTest, UnitsJointlyUniform) {
  // Two units over a 4-element window: 16 pairs equiprobable.
  const int trials = 64000;
  std::vector<uint64_t> counts(16, 0);
  for (int trial = 0; trial < trials; ++trial) {
    auto s = TsSwrSampler::Create(4, 2, 500 + trial).ValueOrDie();
    for (Timestamp t = 0; t < 10; ++t) {
      s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    }
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), 2u);
    const uint64_t a = sample[0].index - 6, b = sample[1].index - 6;
    ++counts[a * 4 + b];
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(TsSworTest, CreateValidation) {
  EXPECT_FALSE(TsSworSampler::Create(0, 1, 1).ok());
  EXPECT_FALSE(TsSworSampler::Create(5, 0, 1).ok());
  EXPECT_TRUE(TsSworSampler::Create(5, 3, 1).ok());
}

TEST(TsSworTest, SmallWindowReturnsExactContents) {
  // n < k: the sample must be exactly the active set.
  auto s = TsSworSampler::Create(4, 6, 3).ValueOrDie();
  for (Timestamp t = 0; t < 30; ++t) {
    s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    auto sample = s->Sample();
    // Window holds min(t+1, 4) elements, always < k = 6.
    const uint64_t expect = std::min<uint64_t>(t + 1, 4);
    ASSERT_EQ(sample.size(), expect) << "t=" << t;
    std::set<uint64_t> idx;
    for (const Item& item : sample) idx.insert(item.index);
    EXPECT_EQ(idx.size(), expect);
    for (const Item& item : sample) EXPECT_LT(t - item.timestamp, 4);
  }
}

TEST(TsSworTest, KDistinctActiveWhenWindowLarge) {
  auto s = TsSworSampler::Create(20, 5, 4).ValueOrDie();
  for (Timestamp t = 0; t < 200; ++t) {
    s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    if (t < 5) continue;
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), 5u) << "t=" << t;
    std::set<uint64_t> idx;
    for (const Item& item : sample) {
      EXPECT_LT(t - item.timestamp, 20) << "t=" << t;
      idx.insert(item.index);
    }
    EXPECT_EQ(idx.size(), 5u) << "duplicates at t=" << t;
  }
}

TEST(TsSworTest, DistinctUnderBursts) {
  auto stream = SyntheticStream(
      UniformValues::Create(1 << 20).ValueOrDie(),
      std::move(PoissonBurstArrivals::Create(2.5)).ValueOrDie(), 77);
  auto s = TsSworSampler::Create(15, 4, 5).ValueOrDie();
  uint64_t active_total = 0;
  for (Timestamp t = 0; t < 2000; ++t) {
    for (const Item& item : stream.Step()) s->Observe(item);
    s->AdvanceTime(t);
    auto sample = s->Sample();
    std::set<uint64_t> idx;
    for (const Item& item : sample) {
      EXPECT_LT(t - item.timestamp, 15);
      idx.insert(item.index);
    }
    EXPECT_EQ(idx.size(), sample.size()) << "t=" << t;
    active_total += sample.size();
  }
  EXPECT_GT(active_total, 0u);
}

TEST(TsSworTest, SubsetsUniformOnePerStep) {
  // Window = last 6 arrivals (rate 1), k = 2: all 15 pairs equiprobable.
  const Timestamp t0 = 6;
  const uint64_t k = 2;
  const int trials = 60000;
  std::map<std::vector<uint64_t>, uint64_t> counts;
  for (int trial = 0; trial < trials; ++trial) {
    auto s = TsSworSampler::Create(t0, k, 900 + trial).ValueOrDie();
    for (Timestamp t = 0; t < 17; ++t) {
      s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    }
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), k);
    std::vector<uint64_t> key;
    for (const Item& item : sample) key.push_back(item.index);
    std::sort(key.begin(), key.end());
    ++counts[key];
  }
  ASSERT_EQ(counts.size(), 15u);  // C(6,2)
  std::vector<uint64_t> flat;
  for (const auto& [key, c] : counts) flat.push_back(c);
  auto result = ChiSquareUniform(flat);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(TsSworTest, SubsetsUniformUnderFixedBurstyStream) {
  // A fixed bursty stream; uniformity over algorithm randomness.
  const Timestamp t0 = 5;
  const uint64_t k = 2;
  std::vector<Item> items;
  uint64_t index = 0;
  Timestamp now = 0;
  for (uint64_t burst : {3u, 1u, 0u, 2u, 1u, 2u}) {
    for (uint64_t i = 0; i < burst; ++i) {
      items.push_back(Item{index, index, now});
      ++index;
    }
    ++now;
  }
  const Timestamp end = now - 1;
  std::vector<uint64_t> active;
  for (const Item& item : items) {
    if (end - item.timestamp < t0) active.push_back(item.index);
  }
  ASSERT_EQ(active.size(), 6u);  // bursts at t=1..5: 1+0+2+1+2 = 6
  const int trials = 60000;
  std::map<std::vector<uint64_t>, uint64_t> counts;
  for (int trial = 0; trial < trials; ++trial) {
    auto s = TsSworSampler::Create(t0, k, 40000 + trial).ValueOrDie();
    for (const Item& item : items) s->Observe(item);
    s->AdvanceTime(end);
    auto sample = s->Sample();
    ASSERT_EQ(sample.size(), k);
    std::vector<uint64_t> key;
    for (const Item& item : sample) key.push_back(item.index);
    std::sort(key.begin(), key.end());
    ++counts[key];
  }
  ASSERT_EQ(counts.size(), 15u);
  std::vector<uint64_t> flat;
  for (const auto& [key, c] : counts) flat.push_back(c);
  auto result = ChiSquareUniform(flat);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(TsSworTest, PerElementInclusionUniform) {
  // Marginal inclusion k/n over a window of 8, k = 3.
  const Timestamp t0 = 8;
  const int trials = 40000;
  std::vector<uint64_t> counts(t0, 0);
  for (int trial = 0; trial < trials; ++trial) {
    auto s = TsSworSampler::Create(t0, 3, 7000 + trial).ValueOrDie();
    for (Timestamp t = 0; t < 19; ++t) {
      s->Observe(Item{static_cast<uint64_t>(t), static_cast<uint64_t>(t), t});
    }
    for (const Item& item : s->Sample()) {
      ++counts[item.index - (19 - t0)];
    }
  }
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(TsSworTest, MemoryIsKLogN) {
  const Timestamp t0 = 1 << 12;
  const uint64_t k = 8;
  auto s = TsSworSampler::Create(t0, k, 6).ValueOrDie();
  uint64_t max_words = 0;
  uint64_t index = 0;
  for (Timestamp t = 0; t < (1 << 13); ++t) {
    s->Observe(Item{index, index, t});
    ++index;
    max_words = std::max(max_words, s->MemoryWords());
  }
  // Very generous constant, but must scale like k log n, far below k*n.
  const uint64_t log_n = FloorLog2(t0);
  EXPECT_LE(max_words, 40 * k * log_n);
  EXPECT_GE(max_words, k * log_n / 4);
}

TEST(TsSworTest, AllExpireThenResume) {
  auto s = TsSworSampler::Create(3, 4, 7).ValueOrDie();
  uint64_t index = 0;
  for (Timestamp t = 0; t < 10; ++t) s->Observe(Item{index, index++, t});
  s->AdvanceTime(100);
  EXPECT_TRUE(s->Sample().empty());
  for (Timestamp t = 100; t < 110; ++t) s->Observe(Item{index, index++, t});
  auto sample = s->Sample();
  EXPECT_EQ(sample.size(), 3u);  // window of 3 at rate 1 < k=4 -> exact
}

}  // namespace
}  // namespace swsample
