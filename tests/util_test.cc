// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Unit tests for the util substrate: PRNG, bit helpers, Status/Result.

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "stats/tests.h"
#include "util/bits.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {
namespace {

TEST(BitsTest, FloorLog2Exact) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(4), 2u);
  EXPECT_EQ(FloorLog2(7), 2u);
  EXPECT_EQ(FloorLog2(8), 3u);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 40), 40u);
  EXPECT_EQ(FloorLog2((uint64_t{1} << 40) + 17), 40u);
  EXPECT_EQ(FloorLog2(~uint64_t{0}), 63u);
}

TEST(BitsTest, CeilLog2Exact) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(5), 3u);
  EXPECT_EQ(CeilLog2(uint64_t{1} << 40), 40u);
}

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(BitsTest, Pow2) {
  EXPECT_EQ(Pow2(0), 1u);
  EXPECT_EQ(Pow2(10), 1024u);
  EXPECT_EQ(Pow2(63), uint64_t{1} << 63);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIndexInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformIndex(bound), bound);
  }
}

TEST(RngTest, UniformIndexOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformIndex(1), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.UniformRange(10, 13));
  EXPECT_EQ(seen, (std::set<uint64_t>{10, 11, 12, 13}));
}

TEST(RngTest, UniformIndexChiSquare) {
  Rng rng(123);
  std::vector<uint64_t> counts(16, 0);
  for (int i = 0; i < 160000; ++i) ++counts[rng.UniformIndex(16)];
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(RngTest, Uniform01Range) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01KolmogorovSmirnov) {
  Rng rng(77);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.Uniform01();
  auto result = KsUniform(std::move(xs));
  EXPECT_GT(result.p_value, 1e-4) << "D=" << result.statistic;
}

TEST(RngTest, BernoulliRationalExactEdges) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.BernoulliRational(5, 5));
    EXPECT_TRUE(rng.BernoulliRational(7, 5));
    EXPECT_FALSE(rng.BernoulliRational(0, 5));
  }
}

TEST(RngTest, BernoulliRationalFrequency) {
  Rng rng(11);
  const int trials = 200000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) hits += rng.BernoulliRational(3, 7);
  double freq = static_cast<double>(hits) / trials;
  EXPECT_NEAR(freq, 3.0 / 7.0, 0.01);
}

TEST(RngTest, BernoulliDoubleFrequency) {
  Rng rng(13);
  const int trials = 200000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.01);
}

TEST(RngTest, BernoulliDoubleEdges) {
  Rng rng(17);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, SplitDecorrelates) {
  Rng parent(21);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 2);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("k must be >= 1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be >= 1");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ValueOrDieMoves) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

}  // namespace
}  // namespace swsample
