// Copyright (c) swsample authors. Licensed under the MIT license.
//
// Unit tests for the util substrate: PRNG, bit helpers, Status/Result,
// and the allocation-free hot-path containers (Arena, RingDeque, FlatMap).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "stats/tests.h"
#include "util/arena.h"
#include "util/bits.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/status.h"

namespace swsample {
namespace {

TEST(BitsTest, FloorLog2Exact) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(4), 2u);
  EXPECT_EQ(FloorLog2(7), 2u);
  EXPECT_EQ(FloorLog2(8), 3u);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 40), 40u);
  EXPECT_EQ(FloorLog2((uint64_t{1} << 40) + 17), 40u);
  EXPECT_EQ(FloorLog2(~uint64_t{0}), 63u);
}

TEST(BitsTest, CeilLog2Exact) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(5), 3u);
  EXPECT_EQ(CeilLog2(uint64_t{1} << 40), 40u);
}

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(BitsTest, Pow2) {
  EXPECT_EQ(Pow2(0), 1u);
  EXPECT_EQ(Pow2(10), 1024u);
  EXPECT_EQ(Pow2(63), uint64_t{1} << 63);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIndexInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformIndex(bound), bound);
  }
}

TEST(RngTest, UniformIndexOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformIndex(1), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.UniformRange(10, 13));
  EXPECT_EQ(seen, (std::set<uint64_t>{10, 11, 12, 13}));
}

TEST(RngTest, UniformIndexChiSquare) {
  Rng rng(123);
  std::vector<uint64_t> counts(16, 0);
  for (int i = 0; i < 160000; ++i) ++counts[rng.UniformIndex(16)];
  auto result = ChiSquareUniform(counts);
  EXPECT_GT(result.p_value, 1e-4) << "stat=" << result.statistic;
}

TEST(RngTest, Uniform01Range) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01KolmogorovSmirnov) {
  Rng rng(77);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.Uniform01();
  auto result = KsUniform(std::move(xs));
  EXPECT_GT(result.p_value, 1e-4) << "D=" << result.statistic;
}

TEST(RngTest, BernoulliRationalExactEdges) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.BernoulliRational(5, 5));
    EXPECT_TRUE(rng.BernoulliRational(7, 5));
    EXPECT_FALSE(rng.BernoulliRational(0, 5));
  }
}

TEST(RngTest, BernoulliRationalFrequency) {
  Rng rng(11);
  const int trials = 200000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) hits += rng.BernoulliRational(3, 7);
  double freq = static_cast<double>(hits) / trials;
  EXPECT_NEAR(freq, 3.0 / 7.0, 0.01);
}

TEST(RngTest, BernoulliDoubleFrequency) {
  Rng rng(13);
  const int trials = 200000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.01);
}

TEST(RngTest, BernoulliDoubleEdges) {
  Rng rng(17);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, SplitDecorrelates) {
  Rng parent(21);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 2);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("k must be >= 1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be >= 1");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ValueOrDieMoves) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

// --- Arena ---------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(64);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(24, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    // Write the whole block: ASan would flag overlap or OOB.
    std::memset(p, 0xab, 24);
    EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST(ArenaTest, ResetRecyclesChunks) {
  Arena arena(128);
  void* first = arena.Allocate(64, 8);
  arena.Allocate(64, 8);
  const size_t reserved = arena.ReservedBytes();
  arena.Reset();
  // Same first chunk is handed out again; nothing new reserved.
  EXPECT_EQ(arena.Allocate(64, 8), first);
  EXPECT_EQ(arena.ReservedBytes(), reserved);
}

TEST(ArenaTest, OversizedRequestGetsItsOwnChunk) {
  Arena arena(64);
  void* big = arena.Allocate(10000, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big) % 64, 0u);
  std::memset(big, 1, 10000);
}

// --- RingDeque -----------------------------------------------------------

TEST(RingDequeTest, FuzzMatchesStdDeque) {
  RingDeque<uint64_t> ring;
  std::deque<uint64_t> ref;
  Rng rng(404);
  for (int op = 0; op < 20000; ++op) {
    switch (rng.UniformIndex(10)) {
      case 0:
      case 1:
      case 2:
      case 3:  // bias toward growth
        ring.push_back(op);
        ref.push_back(static_cast<uint64_t>(op));
        break;
      case 4:
        ring.push_front(op);
        ref.push_front(static_cast<uint64_t>(op));
        break;
      case 5:
        if (!ref.empty()) {
          ring.pop_front();
          ref.pop_front();
        }
        break;
      case 6:
        if (!ref.empty()) {
          ring.pop_back();
          ref.pop_back();
        }
        break;
      case 7:
        if (!ref.empty()) {
          const uint64_t i = rng.UniformIndex(ref.size());
          ring.EraseAt(i);
          ref.erase(ref.begin() + static_cast<int64_t>(i));
        }
        break;
      case 8:
        if (!ref.empty()) {
          const uint64_t n = rng.UniformIndex(ref.size() + 1);
          ring.pop_front_n(n);
          ref.erase(ref.begin(), ref.begin() + static_cast<int64_t>(n));
        }
        break;
      case 9:
        if (rng.UniformIndex(50) == 0) {
          ring.clear();
          ref.clear();
        }
        break;
    }
    ASSERT_EQ(ring.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(ring.front(), ref.front());
      ASSERT_EQ(ring.back(), ref.back());
      const uint64_t i = rng.UniformIndex(ref.size());
      ASSERT_EQ(ring[i], ref[i]);
    }
  }
  // Full sweep at the end.
  ASSERT_EQ(ring.size(), ref.size());
  for (uint64_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ring[i], ref[i]);
}

TEST(RingDequeTest, ClearKeepsCapacity) {
  RingDeque<uint64_t> ring;
  for (uint64_t i = 0; i < 100; ++i) ring.push_back(i);
  const size_t cap = ring.capacity();
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), cap);
  for (uint64_t i = 0; i < cap; ++i) ring.push_back(i);
  EXPECT_EQ(ring.capacity(), cap);  // refill allocates nothing
}

TEST(RingDequeTest, WrapAroundIndexing) {
  RingDeque<uint64_t> ring;
  // Cycle a window of 5 through many pushes so head wraps repeatedly.
  uint64_t next = 0;
  for (; next < 5; ++next) ring.push_back(next);
  for (; next < 1000; ++next) {
    ring.pop_front();
    ring.push_back(next);
    ASSERT_EQ(ring.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i) ASSERT_EQ(ring[i], next - 4 + i);
  }
}

// --- FlatMap -------------------------------------------------------------

TEST(FlatMapTest, FuzzMatchesUnorderedMap) {
  FlatMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(505);
  // Small key domain forces frequent hits, erases of present keys, and
  // long probe chains; the backward-shift erase is exercised constantly.
  const uint64_t domain = 257;
  for (int op = 0; op < 30000; ++op) {
    const uint64_t key = rng.UniformIndex(domain);
    switch (rng.UniformIndex(4)) {
      case 0:
      case 1: {
        const uint64_t value = rng.NextU64();
        const bool inserted = map.TryEmplace(key, value).second;
        const bool ref_inserted = ref.try_emplace(key, value).second;
        ASSERT_EQ(inserted, ref_inserted);
        break;
      }
      case 2:
        ASSERT_EQ(map.Erase(key), ref.erase(key) > 0);
        break;
      case 3: {
        const uint64_t* found = map.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) ASSERT_EQ(*found, it->second);
        break;
      }
    }
    ASSERT_EQ(map.Size(), ref.size());
  }
  // Iteration visits exactly the reference contents.
  std::map<uint64_t, uint64_t> seen;
  map.ForEach([&](uint64_t k, uint64_t& v) { seen.emplace(k, v); });
  ASSERT_EQ(seen.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto it = seen.find(k);
    ASSERT_NE(it, seen.end());
    EXPECT_EQ(it->second, v);
  }
}

TEST(FlatMapTest, OperatorIndexDefaultConstructs) {
  FlatMap<uint64_t, uint64_t> map;
  ++map[7];
  ++map[7];
  ++map[9];
  EXPECT_EQ(map.Size(), 2u);
  EXPECT_EQ(*map.Find(7), 2u);
  EXPECT_EQ(*map.Find(9), 1u);
}

TEST(FlatMapTest, ClearKeepsCapacity) {
  FlatMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < 1000; ++i) map.TryEmplace(i, i);
  const uint64_t cap = map.Capacity();
  map.Clear();
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_EQ(map.Capacity(), cap);
  for (uint64_t i = 0; i < 1000; ++i) map.TryEmplace(i, i);
  EXPECT_EQ(map.Capacity(), cap);  // refill allocates nothing
}

TEST(FlatMapTest, BackwardShiftPreservesProbeChains) {
  // Dense consecutive keys on a small table create displaced clusters;
  // erasing front-of-cluster keys must keep every survivor findable.
  FlatMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < 64; ++i) map.TryEmplace(i, i * 10);
  for (uint64_t i = 0; i < 64; i += 2) EXPECT_TRUE(map.Erase(i));
  for (uint64_t i = 0; i < 64; ++i) {
    const uint64_t* v = map.Find(i);
    if (i % 2 == 0) {
      EXPECT_EQ(v, nullptr);
    } else {
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v, i * 10);
    }
  }
}

// --- Batched RNG draws ---------------------------------------------------

TEST(RngTest, FillU64MatchesSequentialDraws) {
  Rng a(99), b(99);
  std::vector<uint64_t> filled(257);
  a.FillU64(filled);
  for (uint64_t& expected : filled) {
    EXPECT_EQ(expected, b.NextU64());
  }
}

TEST(RngTest, FillUniform01MatchesSequentialDraws) {
  Rng a(99), b(99);
  std::vector<double> filled(100);
  a.FillUniform01(filled);
  for (double expected : filled) {
    EXPECT_EQ(expected, b.Uniform01());
  }
}

TEST(CoinSourceTest, DeterministicAndFair) {
  Rng a(7), b(7);
  CoinSource ca(a), cb(b);
  uint64_t heads = 0;
  const int trials = 1 << 16;
  for (int i = 0; i < trials; ++i) {
    const bool coin = ca.Coin();
    ASSERT_EQ(coin, cb.Coin());
    heads += coin ? 1 : 0;
  }
  // 5-sigma band around the binomial mean.
  const double sigma = std::sqrt(trials * 0.25);
  EXPECT_NEAR(static_cast<double>(heads), trials * 0.5, 5 * sigma);
}

TEST(CoinSourceTest, Uses64CoinsPerDraw) {
  Rng a(7), b(7);
  CoinSource coins(a);
  for (int i = 0; i < 64; ++i) coins.Coin();
  // Exactly one word consumed for 64 coins.
  a.NextU64();
  b.NextU64();
  b.NextU64();
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

}  // namespace
}  // namespace swsample
