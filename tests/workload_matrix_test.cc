// Copyright (c) swsample authors. Licensed under the MIT license.
//
// The full sampler x estimator matrix driven through every workload
// generator (stream/workload.h), checked against the exact oracles:
//
//  * chi-square uniformity of every ts/seq sampler's position marginals
//    under Zipf, Poisson-burst, b-model, skewed/out-of-order, duplicate,
//    and adversarial-churn streams;
//  * batch-vs-item and sharded-vs-single equivalence per workload;
//  * estimator accuracy vs exact window aggregates per workload;
//  * checkpoint -> kill -> resume bit-equality with the cut mid-burst;
//  * trace record/replay round-trip and bit-identical replay state;
//  * the out-of-order clamping contract (core/api.h), single and batched.
//
// Trial counts are trimmed by default so the suite stays fast in the
// normal CI jobs; set SWSAMPLE_STRESS=1 (the `stress`-labeled ctest entry
// does) for the full-resolution run.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/sink_spec.h"
#include "baseline/exact_window.h"
#include "core/ts_single.h"
#include "stat_check.h"
#include "stream/driver.h"
#include "stream/sharded_driver.h"
#include "stream/workload.h"
#include "util/serial.h"

namespace swsample {
namespace {

bool Stress() { return std::getenv("SWSAMPLE_STRESS") != nullptr; }
int UniformTrials() { return Stress() ? 20000 : 4000; }

constexpr Timestamp kT0 = 24;    // ts window for every matrix sampler
constexpr uint64_t kSeqN = 64;   // seq window for every matrix sampler
constexpr uint64_t kBatch = 17;  // ragged batch: cuts plateaus mid-run

struct NamedWorkload {
  const char* name;
  const char* spec;
  bool skewed;  // emits out-of-order timestamps
};

// Every generator family and modifier, with a domain small enough for
// exact per-value aggregates. Churn's t matches kT0 so its gaps land on
// the samplers' expiry horizon.
const NamedWorkload kWorkloads[] = {
    {"zipf", "constant@zipf,rate=8,domain=64,alpha=1.2", false},
    {"poisson", "poisson@uniform,lambda=6,domain=64", false},
    {"bmodel", "bmodel@zipf,bias=0.8,levels=8,volume=2048,domain=64", false},
    {"skew", "poisson@uniform,lambda=6,domain=64,skew=12", true},
    {"dup", "constant@zipf,rate=8,domain=64,alpha=1.2,dup=0.25,duplag=32",
     false},
    {"churn", "churn,t=24,domain=64", false},
    {"churn-skew", "churn,t=24,domain=64,skew=8", true},
};

// One deterministic stream per (workload, seed), extended until the final
// ts window holds enough items for a meaningful chi-square (churn's t+1
// gaps can otherwise end the stream right after a full expiry).
std::vector<Item> MakeStream(const NamedWorkload& w, uint64_t seed) {
  auto gen = WorkloadGenerator::Create(w.spec, seed).ValueOrDie();
  std::vector<Item> items;
  gen->Generate(512, &items);
  auto oracle = ExactWindow::CreateTimestamp(kT0, 1, true, 1).ValueOrDie();
  oracle->ObserveBatch(items);
  while (oracle->contents().size() < 16 && items.size() < 4096) {
    std::vector<Item> more;
    gen->Generate(64, &more);
    oracle->ObserveBatch(more);
    items.insert(items.end(), more.begin(), more.end());
  }
  EXPECT_GE(oracle->contents().size(), 16u) << w.name;
  return items;
}

// Exact active window of `items` under the ts model (clamped identically
// to the samplers; see the out-of-order contract in core/api.h).
std::deque<Item> TsOracleWindow(std::span<const Item> items) {
  auto oracle = ExactWindow::CreateTimestamp(kT0, 1, true, 1).ValueOrDie();
  oracle->ObserveBatch(items);
  return oracle->contents();
}

// Index -> window-position map of an oracle window (insertion order).
std::map<StreamIndex, uint64_t> PositionMap(const std::deque<Item>& window) {
  std::map<StreamIndex, uint64_t> position;
  for (const Item& item : window) {
    const uint64_t pos = position.size();
    position[item.index] = pos;
  }
  return position;
}

Result<Sink> MakeSinkFull(const std::string& spec_text, uint64_t seed) {
  auto spec = ParseSinkSpec(spec_text);
  if (!spec.ok()) return spec.status();
  spec.value().seed = seed;
  return CreateSink(spec.value());
}

// Position counts of a sampler's Sample() marginals over many seeded
// trials against the index->position map of the exact active window.
std::vector<uint64_t> SamplerPositionCounts(const std::string& sink_spec,
                                            std::span<const Item> items,
                                            const std::map<StreamIndex,
                                                           uint64_t>& position,
                                            uint64_t cells, int trials,
                                            uint64_t seed) {
  std::vector<uint64_t> counts(cells, 0);
  for (int t = 0; t < trials; ++t) {
    auto sink = MakeSinkFull(sink_spec, seed + static_cast<uint64_t>(t))
                    .ValueOrDie();
    for (size_t i = 0; i < items.size(); i += kBatch) {
      const size_t len = std::min<size_t>(kBatch, items.size() - i);
      sink.sink->ObserveBatch(std::span<const Item>(items).subspan(i, len));
    }
    for (const Item& s : sink.sampler->Sample()) {
      auto it = position.find(s.index);
      EXPECT_NE(it, position.end())
          << sink_spec << ": sampled index " << s.index
          << " is not in the exact active window";
      if (it == position.end()) continue;
      ++counts[it->second];
    }
  }
  return counts;
}

TEST(WorkloadSpecTest, RoundTripsThroughFormat) {
  for (const NamedWorkload& w : kWorkloads) {
    auto spec = ParseWorkloadSpec(w.spec).ValueOrDie();
    const std::string text = FormatWorkloadSpec(spec);
    auto back = ParseWorkloadSpec(text).ValueOrDie();
    EXPECT_EQ(FormatWorkloadSpec(back), text) << w.spec;
    EXPECT_EQ(back.arrivals, spec.arrivals);
    EXPECT_EQ(back.values, spec.values);
    EXPECT_EQ(back.domain, spec.domain);
    EXPECT_EQ(back.skew, spec.skew);
  }
}

TEST(WorkloadSpecTest, RejectsBadSpecs) {
  EXPECT_FALSE(ParseWorkloadSpec("steady").ok());
  EXPECT_FALSE(ParseWorkloadSpec("constant@gauss").ok());
  EXPECT_FALSE(ParseWorkloadSpec("constant,rate").ok());
  EXPECT_FALSE(ParseWorkloadSpec("constant,bogus=1").ok());
  EXPECT_FALSE(WorkloadGenerator::Create("constant,rate=0", 1).ok());
  EXPECT_FALSE(WorkloadGenerator::Create("churn,t=1", 1).ok());
  EXPECT_FALSE(WorkloadGenerator::Create("bmodel,bias=0.4", 1).ok());
  EXPECT_FALSE(WorkloadGenerator::Create("poisson,lambda=0", 1).ok());
  EXPECT_FALSE(WorkloadGenerator::Create("constant,dup=1.5", 1).ok());
}

TEST(WorkloadGeneratorTest, IsDeterministicPerSeed) {
  for (const NamedWorkload& w : kWorkloads) {
    auto a = WorkloadGenerator::Create(w.spec, 42).ValueOrDie()->Take(400);
    auto b = WorkloadGenerator::Create(w.spec, 42).ValueOrDie()->Take(400);
    EXPECT_EQ(a, b) << w.name;
    auto c = WorkloadGenerator::Create(w.spec, 43).ValueOrDie()->Take(400);
    EXPECT_NE(a, c) << w.name << ": different seeds produced equal streams";
    // Indices are always consecutive from 0.
    for (uint64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].index, i);
  }
}

TEST(WorkloadGeneratorTest, ChurnEmitsCutoverPlateausAndHorizonGaps) {
  auto items =
      WorkloadGenerator::Create("churn,t=24", 7).ValueOrDie()->Take(2000);
  std::set<uint64_t> plateau_lengths;
  std::set<Timestamp> gaps;
  uint64_t run = 1;
  for (size_t i = 1; i < items.size(); ++i) {
    if (items[i].timestamp == items[i - 1].timestamp) {
      ++run;
    } else {
      plateau_lengths.insert(run);
      gaps.insert(items[i].timestamp - items[i - 1].timestamp);
      run = 1;
    }
  }
  // The ExtendRun-cutover straddle {15,16,17}, the power-of-two cascade
  // plateau, and all three expiry-horizon edges must all occur.
  for (uint64_t p : {15u, 16u, 17u, 64u}) {
    EXPECT_TRUE(plateau_lengths.count(p)) << "missing plateau " << p;
  }
  for (Timestamp g : {Timestamp{23}, Timestamp{24}, Timestamp{25}}) {
    EXPECT_TRUE(gaps.count(g)) << "missing gap " << g;
  }
}

TEST(WorkloadGeneratorTest, SkewProducesGenuineDisorderAndClampRestoresIt) {
  auto items = WorkloadGenerator::Create("poisson@uniform,lambda=6,skew=12", 3)
                   .ValueOrDie()
                   ->Take(800);
  EXPECT_FALSE(IsTimestampOrdered(items, 0));
  std::vector<Item> clamped;
  ClampTimestamps(items, 0, &clamped);
  EXPECT_TRUE(IsTimestampOrdered(clamped, 0));
  ASSERT_EQ(clamped.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(clamped[i].value, items[i].value);
    EXPECT_GE(clamped[i].timestamp, items[i].timestamp);
  }
}

// --- the sampler matrix ----------------------------------------------------

TEST(WorkloadMatrixTest, TsSamplersUniformUnderEveryWorkload) {
  const char* samplers[] = {"bop-ts-single,t=24", "bop-ts-swr,t=24,k=2",
                            "bop-ts-swor,t=24,k=4"};
  for (const NamedWorkload& w : kWorkloads) {
    const auto items = MakeStream(w, /*seed=*/500);
    const auto window = TsOracleWindow(items);
    const auto position = PositionMap(window);
    for (const char* s : samplers) {
      const uint64_t base = std::hash<std::string>{}(std::string(w.name) + s);
      auto counts = SamplerPositionCounts(s, items, position, window.size(),
                                          UniformTrials(), base);
      EXPECT_TRUE(IsUniform(counts, base)) << w.name << " x " << s;
    }
  }
}

TEST(WorkloadMatrixTest, SeqSamplersUniformUnderEveryWorkload) {
  const char* samplers[] = {"bop-seq-single,n=64", "bop-seq-swr,n=64,k=2",
                            "bop-seq-swor,n=64,k=4"};
  for (const NamedWorkload& w : kWorkloads) {
    const auto items = MakeStream(w, /*seed=*/600);
    ASSERT_GE(items.size(), kSeqN);
    std::map<StreamIndex, uint64_t> position;
    for (uint64_t i = 0; i < kSeqN; ++i) {
      position[items.size() - kSeqN + i] = i;
    }
    for (const char* s : samplers) {
      const uint64_t base = std::hash<std::string>{}(std::string(w.name) + s);
      auto counts = SamplerPositionCounts(s, items, position, kSeqN,
                                          UniformTrials(), base);
      EXPECT_TRUE(IsUniform(counts, base)) << w.name << " x " << s;
    }
  }
}

TEST(WorkloadMatrixTest, BatchMatchesItemUnderEveryWorkload) {
  const int trials = UniformTrials();
  for (const NamedWorkload& w : kWorkloads) {
    const auto items = MakeStream(w, /*seed=*/700);
    const auto window = TsOracleWindow(items);
    const auto position = PositionMap(window);
    // Batched path (ragged kBatch chunks) vs item-at-a-time path.
    auto batched = SamplerPositionCounts("bop-ts-single,t=24", items, position,
                                         window.size(), trials, 11000);
    std::vector<uint64_t> unbatched(window.size(), 0);
    for (int t = 0; t < trials; ++t) {
      auto sink = MakeSinkFull("bop-ts-single,t=24",
                               13000 + static_cast<uint64_t>(t))
                      .ValueOrDie();
      for (const Item& item : items) sink.sink->Observe(item);
      for (const Item& s : sink.sampler->Sample()) {
        auto it = position.find(s.index);
        ASSERT_NE(it, position.end()) << w.name;
        ++unbatched[it->second];
      }
    }
    EXPECT_TRUE(SameDistribution(batched, unbatched, 11000)) << w.name;
  }
}

TEST(WorkloadMatrixTest, ShardedMatchesSingleUnderEveryWorkload) {
  // Key-hash sharding gives each shard its own clamping clock, so the
  // equivalence claim (union of shard windows == single window after all
  // clocks reach the final timestamp) only holds for monotone workloads.
  ShardedStreamDriver::Options options;
  options.threads = 3;
  options.partition = ShardPartition::kKeyHash;
  const ShardedStreamDriver driver(options);
  for (const NamedWorkload& w : kWorkloads) {
    if (w.skewed) continue;
    const auto items = MakeStream(w, /*seed=*/800);
    const Timestamp end_clock = items.back().timestamp;

    std::vector<std::unique_ptr<ExactWindow>> shards;
    std::vector<StreamSink*> shard_ptrs;
    for (int s = 0; s < 3; ++s) {
      shards.push_back(
          ExactWindow::CreateTimestamp(kT0, 1, true, 90 + s).ValueOrDie());
      shard_ptrs.push_back(shards.back().get());
    }
    ASSERT_TRUE(driver.Drive(items, shard_ptrs).ok()) << w.name;

    auto single = ExactWindow::CreateTimestamp(kT0, 1, true, 99).ValueOrDie();
    single->ObserveBatch(items);

    // The driver re-indexes each shard's stream locally (sequence windows
    // shard as window_n / shards), so global indices are not preserved;
    // the union claim is over (value, timestamp) multisets.
    std::vector<std::pair<uint64_t, Timestamp>> merged;
    for (int s = 0; s < 3; ++s) {
      // A shard whose last item is old still holds expired elements; move
      // every shard clock to the stream's final timestamp first.
      shards[s]->AdvanceTime(end_clock);
      for (const Item& item : shards[s]->contents()) {
        EXPECT_EQ(ShardOfKey(item.value, 3), static_cast<uint64_t>(s));
        merged.emplace_back(item.value, item.timestamp);
      }
    }
    std::vector<std::pair<uint64_t, Timestamp>> expect;
    for (const Item& item : single->contents()) {
      expect.emplace_back(item.value, item.timestamp);
    }
    std::sort(merged.begin(), merged.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(merged, expect) << w.name;
  }
}

// --- the estimator matrix --------------------------------------------------

TEST(WorkloadMatrixTest, EstimatorsTrackExactAggregatesUnderEveryWorkload) {
  for (const NamedWorkload& w : kWorkloads) {
    const auto items = MakeStream(w, /*seed=*/900);
    const auto window = TsOracleWindow(items);
    const double n = static_cast<double>(window.size());
    std::map<uint64_t, double> freq;
    std::vector<double> values;
    for (const Item& item : window) {
      freq[item.value] += 1.0;
      values.push_back(static_cast<double>(item.value));
    }
    std::sort(values.begin(), values.end());
    double exact_f2 = 0, exact_h = 0;
    for (const auto& [v, c] : freq) {
      exact_f2 += c * c;
      const double p = c / n;
      exact_h -= p * std::log2(p);
    }

    auto estimate = [&](const std::string& spec) {
      auto sink = MakeSinkFull(spec, /*seed=*/31).ValueOrDie();
      for (size_t i = 0; i < items.size(); i += kBatch) {
        const size_t len = std::min<size_t>(kBatch, items.size() - i);
        sink.sink->ObserveBatch(std::span<const Item>(items).subspan(i, len));
      }
      return sink.estimator->Estimate();
    };

    // Exact substrate: sampling marginals and window size are exact, so
    // only the r-sample estimation noise remains (seeded, deterministic).
    auto count = estimate("window-count@exact-ts,t=24");
    EXPECT_NEAR(count.value, n, 0.01 * n + 1e-9) << w.name;

    auto f2 = estimate("ams-fk@exact-ts,t=24,r=512");
    EXPECT_NEAR(f2.value, exact_f2, 0.5 * exact_f2) << w.name;

    auto h = estimate("ccm-entropy@exact-ts,t=24,r=512");
    EXPECT_NEAR(h.value, exact_h, std::max(1.5, 0.5 * exact_h)) << w.name;

    // Theorem 5.1 substrate (paper sampler under the estimator).
    auto f2_ts = estimate("ams-fk@bop-ts-single,t=24,r=512");
    EXPECT_NEAR(f2_ts.value, exact_f2, 0.6 * exact_f2) << w.name;

    // Quantile: the estimate must land inside a generous rank band.
    auto q = estimate("dkw-quantile@exact-ts,t=24,r=512");
    const double lo = values[static_cast<size_t>(0.25 * (n - 1))];
    const double hi = values[static_cast<size_t>(0.75 * (n - 1))];
    EXPECT_GE(q.value, lo) << w.name;
    EXPECT_LE(q.value, hi) << w.name;

    // Recency-weighted mean (sequence model: biased-mean's substrates are
    // the seq samplers): any convex weighting of the last kSeqN values
    // stays inside their range.
    ASSERT_GE(items.size(), kSeqN) << w.name;
    double seq_min = 1e300, seq_max = -1e300;
    for (size_t i = items.size() - kSeqN; i < items.size(); ++i) {
      const double v = static_cast<double>(items[i].value);
      seq_min = std::min(seq_min, v);
      seq_max = std::max(seq_max, v);
    }
    auto mean = estimate("biased-mean,n=64,r=8");
    EXPECT_GE(mean.value, seq_min) << w.name;
    EXPECT_LE(mean.value, seq_max) << w.name;

    // Triangles: values are keys, not encoded edges — run-sanity only.
    auto tri = estimate("buriol-triangles@exact-ts,t=24,r=64,vertices=64");
    EXPECT_GE(tri.value, 0.0) << w.name;
  }
}

// --- checkpoint / trace ----------------------------------------------------

TEST(WorkloadMatrixTest, CheckpointResumeMidBurstIsBitIdentical) {
  const auto items = MakeStream(kWorkloads[5], /*seed=*/1000);  // churn
  // Cut at a batch boundary that lands inside a same-timestamp plateau
  // ("mid-burst"): both neighbors of the cut share a timestamp.
  size_t cut = 0;
  for (size_t c = kBatch; c + kBatch < items.size(); c += kBatch) {
    if (items[c - 1].timestamp == items[c].timestamp) {
      cut = c;
      break;
    }
  }
  ASSERT_GT(cut, 0u) << "no batch boundary falls inside a plateau";

  for (const char* spec_text :
       {"bop-ts-single,t=24", "bop-ts-swor,t=24,k=4",
        "ams-fk@bop-ts-single,t=24,r=64"}) {
    auto spec = ParseSinkSpec(spec_text).ValueOrDie();
    spec.seed = 77;
    auto full = CreateSink(spec).ValueOrDie();
    auto interrupted = CreateSink(spec).ValueOrDie();

    auto feed = [&](StreamSink& sink, size_t from, size_t to) {
      for (size_t i = from; i < to; i += kBatch) {
        const size_t len = std::min<size_t>(kBatch, to - i);
        sink.ObserveBatch(std::span<const Item>(items).subspan(i, len));
      }
    };
    feed(*full.sink, 0, items.size());

    feed(*interrupted.sink, 0, cut);
    auto blob = SaveSink(*interrupted.sink, spec).ValueOrDie();
    interrupted = Sink{};  // "kill" the original
    auto resumed = RestoreSink(blob).ValueOrDie();
    feed(*resumed.sink.sink, cut, items.size());

    EXPECT_EQ(SaveSink(*full.sink, spec).ValueOrDie(),
              SaveSink(*resumed.sink.sink, resumed.spec).ValueOrDie())
        << spec_text;
  }
}

TEST(WorkloadMatrixTest, TraceRoundTripsAndReplaysBitIdentically) {
  const auto items = MakeStream(kWorkloads[2], /*seed=*/1100);  // bmodel
  const std::string path = ::testing::TempDir() + "/workload.trace";
  ASSERT_TRUE(WriteTrace(path, items).ok());
  auto back = ReadTrace(path).ValueOrDie();
  ASSERT_EQ(back.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(back[i], items[i]) << "at " << i;
  }

  StreamDriver::Options options;
  options.batch_size = kBatch;
  const StreamDriver driver(options);
  auto spec = ParseSinkSpec("bop-ts-single,t=24").ValueOrDie();
  spec.seed = 5;
  auto direct = CreateSink(spec).ValueOrDie();
  driver.Drive(items, *direct.sink);
  auto replayed = CreateSink(spec).ValueOrDie();
  auto report = ReplayTrace(driver, path, *replayed.sink);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().items, items.size());
  EXPECT_EQ(SaveSink(*direct.sink, spec).ValueOrDie(),
            SaveSink(*replayed.sink, spec).ValueOrDie());

  // Sharded replay: same shard states as driving the items directly.
  ShardedStreamDriver::Options sharded_options;
  sharded_options.threads = 2;
  sharded_options.partition = ShardPartition::kKeyHash;
  const ShardedStreamDriver sharded(sharded_options);
  auto mk_shards = [&spec]() {
    std::vector<Sink> shards;
    for (int s = 0; s < 2; ++s) {
      auto shard_spec = spec;
      shard_spec.seed = 50 + static_cast<uint64_t>(s);
      shards.push_back(CreateSink(shard_spec).ValueOrDie());
    }
    return shards;
  };
  auto shards_a = mk_shards();
  auto shards_b = mk_shards();
  std::vector<StreamSink*> ptrs_a, ptrs_b;
  for (auto& s : shards_a) ptrs_a.push_back(s.sink.get());
  for (auto& s : shards_b) ptrs_b.push_back(s.sink.get());
  ASSERT_TRUE(sharded.Drive(items, ptrs_a).ok());
  ASSERT_TRUE(ReplayTraceSharded(sharded, path, ptrs_b).ok());
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(SaveSink(*shards_a[s].sink, spec).ValueOrDie(),
              SaveSink(*shards_b[s].sink, spec).ValueOrDie())
        << "shard " << s;
  }
}

TEST(WorkloadMatrixTest, ReadTraceRejectsCorruption) {
  const std::string path = ::testing::TempDir() + "/corrupt.trace";
  auto items = WorkloadGenerator::Create("constant", 1).ValueOrDie()->Take(50);
  ASSERT_TRUE(WriteTrace(path, items).ok());
  // Bad magic.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    std::fputc('X', f);
    std::fclose(f);
    EXPECT_FALSE(ReadTrace(path).ok());
  }
  // Truncation.
  ASSERT_TRUE(WriteTrace(path, items).ok());
  {
    auto full = ReadTrace(path).ValueOrDie();
    ASSERT_EQ(full.size(), items.size());
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_TRUE(::truncate(path.c_str(), size - 3) == 0);
    EXPECT_FALSE(ReadTrace(path).ok());
  }
}

// --- the out-of-order contract ---------------------------------------------

const char* kTsSinkSpecs[] = {
    "bop-ts-single,t=24",       "bop-ts-swr,t=24,k=2",
    "bop-ts-swor,t=24,k=2",     "exact-ts,t=24",
    "bdm-priority,t=24,k=2",    "gl-bounded-priority,t=24,k=2",
};

TEST(OutOfOrderContractTest, SingleObserveClampsLikeNormalizedStream) {
  const auto skewed = MakeStream(kWorkloads[3], /*seed=*/1200);  // skew
  ASSERT_FALSE(IsTimestampOrdered(skewed, 0));
  std::vector<Item> clamped;
  ClampTimestamps(skewed, 0, &clamped);
  for (const char* spec_text : kTsSinkSpecs) {
    auto spec = ParseSinkSpec(spec_text).ValueOrDie();
    spec.seed = 21;
    auto raw = CreateSink(spec).ValueOrDie();
    auto normalized = CreateSink(spec).ValueOrDie();
    for (const Item& item : skewed) raw.sink->Observe(item);
    for (const Item& item : clamped) normalized.sink->Observe(item);
    EXPECT_EQ(SaveSink(*raw.sink, spec).ValueOrDie(),
              SaveSink(*normalized.sink, spec).ValueOrDie())
        << spec_text;
  }
}

TEST(OutOfOrderContractTest, BatchedObserveClampsLikeNormalizedStream) {
  const auto skewed = MakeStream(kWorkloads[3], /*seed=*/1300);
  ASSERT_FALSE(IsTimestampOrdered(skewed, 0));
  std::vector<Item> clamped;
  ClampTimestamps(skewed, 0, &clamped);
  for (const char* spec_text : kTsSinkSpecs) {
    auto spec = ParseSinkSpec(spec_text).ValueOrDie();
    spec.seed = 22;
    auto raw = CreateSink(spec).ValueOrDie();
    auto normalized = CreateSink(spec).ValueOrDie();
    for (size_t i = 0; i < skewed.size(); i += kBatch) {
      const size_t len = std::min<size_t>(kBatch, skewed.size() - i);
      raw.sink->ObserveBatch(std::span<const Item>(skewed).subspan(i, len));
      normalized.sink->ObserveBatch(
          std::span<const Item>(clamped).subspan(i, len));
    }
    EXPECT_EQ(SaveSink(*raw.sink, spec).ValueOrDie(),
              SaveSink(*normalized.sink, spec).ValueOrDie())
        << spec_text;
  }
}

TEST(OutOfOrderContractTest, AdvanceTimeRegressionIsANoOp) {
  auto sampler = TsSingleSampler::Create(10, 7).ValueOrDie();
  for (uint64_t i = 0; i < 20; ++i) {
    sampler.Observe(Item{i, i, static_cast<Timestamp>(i)});
  }
  BinaryWriter before;
  sampler.SaveState(&before);
  sampler.AdvanceTime(3);  // regression: must not move the clock or expire
  BinaryWriter after;
  sampler.SaveState(&after);
  EXPECT_EQ(before.str(), after.str());
  EXPECT_EQ(sampler.now(), 19);

  auto exact = ExactWindow::CreateTimestamp(10, 1, true, 1).ValueOrDie();
  for (uint64_t i = 0; i < 20; ++i) {
    exact->Observe(Item{i, i, static_cast<Timestamp>(i)});
  }
  const size_t active = exact->contents().size();
  exact->AdvanceTime(0);
  EXPECT_EQ(exact->contents().size(), active);
}

TEST(OutOfOrderContractTest, SkewedSamplesStayUniformOverClampedWindow) {
  // End-to-end: under a skewed workload the sampler must be uniform over
  // the CLAMPED window (which is what the oracle buffers too).
  const auto items = MakeStream(kWorkloads[3], /*seed=*/1400);
  const auto window = TsOracleWindow(items);
  const auto position = PositionMap(window);
  auto counts =
      SamplerPositionCounts("bop-ts-single,t=24", items, position,
                            window.size(), UniformTrials(), 15000);
  EXPECT_TRUE(IsUniform(counts, 15000));
}

}  // namespace
}  // namespace swsample
